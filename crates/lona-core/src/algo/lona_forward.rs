//! LONA-Forward (Algorithm 1): forward processing with
//! differential-index pruning.
//!
//! After evaluating `F(u)` exactly, every unpruned neighbor `v` gets
//! the Eq. 1/2 upper bound from `delta(v − u)`; neighbors whose bound
//! falls strictly below `topklbound` are added to the pruned list and
//! never pay an exact expansion.

use lona_graph::NodeId;

use crate::aggregate::Aggregate;
use crate::algo::context::Ctx;
use crate::algo::ForwardOptions;
use crate::algo::ProcessingOrder;
use crate::bounds::{avg_from_sum_bound, forward_max_bound, forward_sum_bound};
use crate::index::SizeIndex;
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

/// Per-node processing state (stats invariant: every node ends up
/// either evaluated or pruned).
#[derive(Copy, Clone, PartialEq, Eq)]
enum NodeState {
    Pending,
    Evaluated,
    Pruned,
}

pub(crate) fn run(ctx: &Ctx<'_>, opts: &ForwardOptions) -> QueryResult {
    assert!(
        !ctx.g.is_directed(),
        "LONA-Forward pruning requires an undirected graph (Eq. 1 needs mutual adjacency)"
    );
    let diffs = ctx
        .diffs
        .expect("engine must prepare the differential index");
    let sizes = ctx.sizes();
    let n = ctx.g.num_nodes();

    let mut scanner = NeighborhoodScanner::new(n);
    let mut topk = TopKHeap::new(ctx.query.k);
    let mut stats = QueryStats::default();
    // Non-candidates start in Pruned without being counted: they are
    // outside the top-k universe, never evaluated, and never bounded.
    let mut state = vec![NodeState::Pending; n];
    let mut num_candidates = n;
    if let Some(mask) = ctx.candidates {
        num_candidates = 0;
        for (i, &c) in mask.iter().enumerate() {
            if c {
                num_candidates += 1;
            } else {
                state[i] = NodeState::Pruned;
            }
        }
    }

    for u in order(ctx, opts.order) {
        if state[u.index()] != NodeState::Pending {
            continue;
        }
        state[u.index()] = NodeState::Evaluated;

        let (scan, value) = ctx.evaluate(&mut scanner, u, &mut stats);
        topk.offer(u, value);

        let lbound = topk.threshold();
        if lbound == f64::NEG_INFINITY {
            continue; // no pruning power until k results exist
        }

        // pruneNodes(u, F(u), G, topklbound): bound each 1-hop
        // neighbor via its differential-index entry.
        let f_sum_u = scan.raw_mass + ctx.self_score(u).unwrap_or(0.0);
        let range = ctx.g.adjacency_range(u);
        for (i, &v) in ctx.g.neighbors(u).iter().enumerate() {
            if state[v.index()] != NodeState::Pending {
                continue;
            }
            let delta = diffs.delta_at(range.start + i);
            let bound = neighbor_bound(ctx, sizes, f_sum_u, value, delta, v);
            if bound < lbound {
                state[v.index()] = NodeState::Pruned;
                stats.nodes_pruned += 1;
            }
        }
    }

    debug_assert_eq!(stats.nodes_evaluated + stats.nodes_pruned, num_candidates);
    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

/// Eq. 1/2 upper bound for the not-yet-evaluated neighbor `v` of a
/// just-evaluated `u`. `f_sum_u` is u's plain-sum aggregate under the
/// query's self-inclusion semantics; `value_u` is u's finalized
/// aggregate (only MAX's bound consumes it). Shared by the serial and
/// parallel forward algorithms.
pub(crate) fn neighbor_bound(
    ctx: &Ctx<'_>,
    sizes: &SizeIndex,
    f_sum_u: f64,
    value_u: f64,
    delta: u32,
    v: NodeId,
) -> f64 {
    let include_self = ctx.query.include_self;
    let n_v = sizes.get(v);
    let f_v = ctx.f(v);
    match ctx.query.aggregate {
        Aggregate::Avg => {
            let sum_bound = forward_sum_bound(f_sum_u, delta, n_v, f_v, include_self);
            avg_from_sum_bound(sum_bound, n_v, include_self)
        }
        // DistanceWeightedSum values are ≤ their plain-sum
        // counterparts, so the SUM bound stays valid.
        Aggregate::Sum | Aggregate::DistanceWeightedSum => {
            forward_sum_bound(f_sum_u, delta, n_v, f_v, include_self)
        }
        // MAX uses its own (weaker) differential bound.
        Aggregate::Max => forward_max_bound(value_u, delta, f_v, include_self),
    }
}

/// Materialize the processing order (candidates only — halo nodes of
/// a sharded run never enter the queue).
pub(crate) fn order(ctx: &Ctx<'_>, order: ProcessingOrder) -> Vec<NodeId> {
    let n = ctx.g.num_nodes() as u32;
    let mut ids: Vec<NodeId> = (0..n)
        .map(NodeId)
        .filter(|&u| ctx.is_candidate(u))
        .collect();
    match order {
        ProcessingOrder::NodeId => {}
        ProcessingOrder::DegreeDescending => {
            ids.sort_by_key(|&u| std::cmp::Reverse(ctx.g.degree(u)));
        }
        ProcessingOrder::ScoreDescending => {
            ids.sort_by(|&a, &b| ctx.f(b).total_cmp(&ctx.f(a)).then(a.cmp(&b)));
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::base_forward;
    use crate::engine::TopKQuery;
    use crate::index::{DiffIndex, SizeIndex};
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn run_forward(
        g: &CsrGraph,
        scores: &[f64],
        h: u32,
        query: &TopKQuery,
        order: ProcessingOrder,
    ) -> QueryResult {
        let sizes = SizeIndex::build(g.view(), h);
        let diffs = DiffIndex::build(g.view(), h, &sizes);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: h,
            scores,
            score_vec: &score_vec,
            query,
            sizes: Some(&sizes),
            diffs: Some(&diffs),
            candidates: None,
        };
        run(&ctx, &ForwardOptions { order })
    }

    fn two_communities() -> (CsrGraph, Vec<f64>) {
        // Dense high-scoring triangle {0,1,2} + low-scoring tail 3-4-5.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])
            .build()
            .unwrap();
        let scores = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        (g, scores)
    }

    #[test]
    fn agrees_with_base_on_all_orders() {
        let (g, scores) = two_communities();
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::DistanceWeightedSum,
        ] {
            for h in 1..=3 {
                for k in [1, 2, 4] {
                    let query = TopKQuery::new(k, aggregate);
                    let score_vec = ScoreVec::new(scores.to_vec());
                    let ctx = Ctx {
                        g: g.view(),
                        hops: h,
                        scores: &scores,
                        score_vec: &score_vec,
                        query: &query,
                        sizes: None,
                        diffs: None,
                        candidates: None,
                    };
                    let expect = base_forward::run(&ctx);
                    for order in [
                        ProcessingOrder::NodeId,
                        ProcessingOrder::DegreeDescending,
                        ProcessingOrder::ScoreDescending,
                    ] {
                        let got = run_forward(&g, &scores, h, &query, order);
                        assert!(
                            got.same_values(&expect, 1e-9),
                            "h={h} k={k} {aggregate:?} {order:?}: {:?} vs {:?}",
                            got.values(),
                            expect.values()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_actually_fires() {
        // Big clustered graph where differential deltas are small:
        // a clique ring. With k=1 most of the ring must be prunable.
        let mut b = GraphBuilder::undirected();
        let n = 60u32;
        for c in 0..n / 6 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.push_edge(base + i, base + j);
                }
            }
            b.push_edge(base, (base + 6) % n); // ring link
        }
        let g = b.build().unwrap();
        // One hot clique, everything else cold.
        let scores: Vec<f64> = (0..n).map(|i| if i < 6 { 1.0 } else { 0.01 }).collect();
        let query = TopKQuery::new(1, Aggregate::Sum);
        let res = run_forward(&g, &scores, 2, &query, ProcessingOrder::NodeId);
        assert!(
            res.stats.nodes_pruned > 0,
            "no pruning on a pruning-friendly graph"
        );
        assert_eq!(
            res.stats.nodes_pruned + res.stats.nodes_evaluated,
            g.num_nodes(),
            "state accounting broken"
        );
    }

    #[test]
    fn exclude_self_agrees_with_base() {
        let (g, scores) = two_communities();
        let query = TopKQuery::new(3, Aggregate::Avg).include_self(false);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let expect = base_forward::run(&ctx);
        let got = run_forward(&g, &scores, 2, &query, ProcessingOrder::NodeId);
        assert!(got.same_values(&expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_rejected() {
        let g = GraphBuilder::directed().add_edge(0, 1).build().unwrap();
        let scores = vec![1.0, 1.0];
        let query = TopKQuery::new(1, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let _ = run(&ctx, &ForwardOptions::default());
    }
}
