//! The "Base" algorithm: naive forward processing without pruning.
//!
//! This is the paper's baseline in every figure: "check each node in
//! the network, find its h-hop neighbors, aggregate their values
//! together and then choose the k nodes with the highest aggregate
//! values." Cost: one full h-hop expansion per node — the `m^h · |V|`
//! edge accesses the introduction calls unaffordable.

use lona_graph::NodeId;

use crate::algo::context::Ctx;
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

pub(crate) fn run(ctx: &Ctx<'_>) -> QueryResult {
    let n = ctx.g.num_nodes();
    let mut scanner = NeighborhoodScanner::new(n);
    let mut topk = TopKHeap::new(ctx.query.k);
    let mut stats = QueryStats::default();

    for i in 0..n as u32 {
        let u = NodeId(i);
        if !ctx.is_candidate(u) {
            continue;
        }
        let (_, value) = ctx.evaluate(&mut scanner, u, &mut stats);
        topk.offer(u, value);
    }

    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::engine::TopKQuery;
    use lona_graph::GraphBuilder;
    use lona_relevance::ScoreVec;

    #[test]
    fn star_center_wins_sum() {
        // Star: center 0, leaves 1..=4, all scores 1.
        let g = GraphBuilder::undirected()
            .extend_edges((1..=4).map(|i| (0, i)))
            .build()
            .unwrap();
        let scores = vec![1.0; 5];
        let query = TopKQuery::new(1, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let res = run(&ctx);
        assert_eq!(res.entries[0].0, NodeId(0));
        assert_eq!(res.entries[0].1, 5.0); // 4 leaves + self
        assert_eq!(res.stats.nodes_evaluated, 5);
        assert_eq!(res.stats.nodes_pruned, 0);
    }

    #[test]
    fn avg_normalizes_by_size() {
        // Path 0-1-2: with h=1, ends average over 2 nodes, middle over 3.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let scores = vec![0.0, 1.0, 0.0];
        let query = TopKQuery::new(3, Aggregate::Avg);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let res = run(&ctx);
        // F(0) = (0 + 1)/2 = 0.5 = F(2); F(1) = 1/3.
        let values = res.values();
        assert!((values[0] - 0.5).abs() < 1e-12);
        assert!((values[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exclude_self_changes_values() {
        let g = GraphBuilder::undirected().add_edge(0, 1).build().unwrap();
        let scores = vec![1.0, 0.25];
        let query = TopKQuery::new(2, Aggregate::Sum).include_self(false);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 1,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: None,
            diffs: None,
            candidates: None,
        };
        let res = run(&ctx);
        // F(1) = f(0) = 1.0 ; F(0) = f(1) = 0.25
        assert_eq!(res.entries[0], (NodeId(1), 1.0));
        assert_eq!(res.entries[1], (NodeId(0), 0.25));
    }
}
