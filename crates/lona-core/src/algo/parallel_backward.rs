//! Thread-parallel LONA-Backward: partial distribution, Eq. 3
//! bounds, and threshold-algorithm verification across workers.
//!
//! * **Distribution** — the above-γ distributor list is split into
//!   contiguous blocks, one per worker; each worker scatters into a
//!   *private* `partial`/`received` pair and the pairs merge in fixed
//!   worker order. Private buffers keep the hot inner loop free of
//!   atomics, and the fixed merge order keeps the floating-point
//!   result deterministic for a given thread count (worker-local sums
//!   group differently than serial's, so parallel and serial agree to
//!   rounding — the suite's 1e-9 tolerance — not bit-for-bit).
//! * **Bounds** — embarrassingly parallel over node ranges, then one
//!   serial sort by descending bound.
//! * **Verification** — workers claim candidates in bound order from
//!   a [`ChunkCursor`] (the distributed form of the paper's
//!   best-bound-first walk), verify against private heaps, and raise
//!   a [`SharedThreshold`] as the heaps fill. A worker stops as soon
//!   as the next bound cannot beat the shared threshold; since bounds
//!   descend along the cursor, everything later is unreachable too.
//!   Workers may verify up to `threads · k` extra borderline
//!   candidates versus serial (each heap must fill before it can
//!   raise the threshold) — extra exact evaluations are wasted work,
//!   never wrong answers.
//!
//! The stop rule (`bound <= threshold`, like serial's) may discard a
//! candidate whose exact value *ties* the k-th best; the merged heap
//! then holds an equal-valued node instead, so the value sequence is
//! unchanged but the node set can resolve ties differently than
//! serial (and differently across schedules). That is within the
//! cross-algorithm contract — `QueryResult::same_values` defines
//! agreement over values precisely because the paper's top-k
//! semantics allow any tie-breaking.

use lona_graph::NodeId;

use crate::algo::context::Ctx;
use crate::algo::lona_backward::{candidate_bound, distribute_one, verify_one};
use crate::algo::BackwardOptions;
use crate::exec::{self, ChunkCursor, SharedThreshold};
use crate::neighborhood::NeighborhoodScanner;
use crate::result::QueryResult;
use crate::stats::QueryStats;
use crate::topk::TopKHeap;

pub(crate) fn run(ctx: &Ctx<'_>, opts: &BackwardOptions, threads: usize) -> QueryResult {
    assert!(
        !ctx.g.is_directed(),
        "backward distribution requires an undirected graph (u ∈ S(v) ⟺ v ∈ S(u))"
    );
    let n = ctx.g.num_nodes();
    let threads = exec::resolve_threads(threads, n);
    if threads == 1 {
        return super::lona_backward::run(ctx, opts);
    }
    let mut stats = QueryStats::default();
    let gamma = opts.gamma.resolve_slice(ctx.scores);

    // --- Phase 1: parallel partial distribution above γ. ---
    let distributors: Vec<(NodeId, f64)> = ctx
        .nonzero_descending()
        .iter()
        .copied()
        .take_while(|&(_, f_u)| f_u > gamma)
        .collect();
    stats.nodes_distributed = distributors.len();

    let dist_threads = exec::resolve_threads(threads, distributors.len());
    let block = distributors.len().div_ceil(dist_threads.max(1)).max(1);
    let worker_partials = exec::run_workers(dist_threads, |t| {
        let start = (t * block).min(distributors.len());
        let end = ((t + 1) * block).min(distributors.len());
        let mut partial = vec![0.0f64; n];
        let mut received = vec![0u32; n];
        let mut edges = 0u64;
        let mut scanner = NeighborhoodScanner::new(n);
        for &(u, f_u) in &distributors[start..end] {
            edges += distribute_one(ctx, &mut scanner, u, f_u, &mut partial, &mut received);
        }
        (partial, received, edges)
    });

    let max_agg = ctx.query.aggregate == crate::aggregate::Aggregate::Max;
    let mut partial = vec![0.0f64; n];
    let mut received = vec![0u32; n];
    for (p, r, edges) in worker_partials {
        stats.edges_traversed += edges;
        for i in 0..n {
            if max_agg {
                if p[i] > partial[i] {
                    partial[i] = p[i];
                }
            } else {
                partial[i] += p[i];
            }
            received[i] += r[i];
        }
    }

    // --- Phase 2: Eq. 3 bounds, parallel over node ranges
    // (candidates only — halo nodes of a sharded run are ineligible).
    let mut candidates: Vec<(NodeId, f64)> = (0..n as u32)
        .map(NodeId)
        .filter(|&v| ctx.is_candidate(v))
        .map(|v| (v, 0.0))
        .collect();
    let num_candidates = candidates.len();
    {
        let partial = &partial;
        let received = &received;
        exec::partition_mut(&mut candidates, threads, |_, slice| {
            for (v, bound) in slice.iter_mut() {
                *bound = candidate_bound(ctx, gamma, partial, received, *v);
            }
        });
    }
    candidates.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // --- Phase 3: parallel verification with a shared threshold. ---
    // Chunk of 4: candidates near the front are expensive hub
    // expansions, and a fine-grained cursor keeps the stop line tight.
    let cursor = ChunkCursor::with_chunk(num_candidates, 4);
    let shared = SharedThreshold::new();
    let results = {
        let partial = &partial;
        let received = &received;
        let candidates = &candidates;
        exec::run_workers(threads, |_| {
            let mut scanner = NeighborhoodScanner::new(n);
            let mut topk = TopKHeap::new(ctx.query.k);
            let mut wstats = QueryStats::default();
            let mut verified = 0usize;
            'work: while let Some(range) = cursor.next() {
                for idx in range {
                    let (v, bound) = candidates[idx];
                    // Stop once the bound cannot beat any full heap's
                    // floor — the shared threshold is only ever raised
                    // by heaps holding k exact results, so everything
                    // at or below it is unreachable, and bounds only
                    // descend from here.
                    if bound <= shared.get() {
                        break 'work;
                    }
                    verified += 1;
                    let value =
                        verify_one(ctx, &mut scanner, &mut wstats, gamma, partial, received, v);
                    topk.offer(v, value);
                    if topk.is_full() {
                        shared.raise(topk.threshold());
                    }
                }
            }
            (topk, wstats, verified)
        })
    };

    let mut topk = TopKHeap::new(ctx.query.k);
    let mut verified_total = 0usize;
    for (partial_heap, s, verified) in results {
        for (node, value) in partial_heap.into_sorted_vec() {
            topk.offer(node, value);
        }
        stats.merge(&s);
        verified_total += verified;
    }
    stats.nodes_pruned = num_candidates - verified_total;

    QueryResult {
        entries: topk.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::algo::{lona_backward, GammaSpec};
    use crate::engine::TopKQuery;
    use crate::index::SizeIndex;
    use lona_graph::{CsrGraph, GraphBuilder};
    use lona_relevance::ScoreVec;

    fn ladder(n: u32) -> (CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.push_edge(i, (i + 1) % n);
            b.push_edge(i, (i * 17 + 5) % n);
        }
        let g = b.build().unwrap();
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    ((i % 89) + 1) as f64 / 89.0
                } else {
                    0.0
                }
            })
            .collect();
        (g, scores)
    }

    #[test]
    fn agrees_with_serial_backward() {
        let (g, scores) = ladder(150);
        let sizes = SizeIndex::build(g.view(), 2);
        for aggregate in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Max,
            Aggregate::DistanceWeightedSum,
        ] {
            for gamma in [
                GammaSpec::Fixed(0.0),
                GammaSpec::Fixed(0.4),
                GammaSpec::NonzeroQuantile(0.7),
            ] {
                for k in [1usize, 4, 12] {
                    let query = TopKQuery::new(k, aggregate);
                    let score_vec = ScoreVec::new(scores.to_vec());
                    let ctx = Ctx {
                        g: g.view(),
                        hops: 2,
                        scores: &scores,
                        score_vec: &score_vec,
                        query: &query,
                        sizes: Some(&sizes),
                        diffs: None,
                        candidates: None,
                    };
                    let opts = BackwardOptions { gamma };
                    let serial = lona_backward::run(&ctx, &opts);
                    for threads in [2usize, 3, 7] {
                        let parallel = run(&ctx, &opts, threads);
                        assert!(
                            parallel.same_values(&serial, 1e-9),
                            "{aggregate:?} {gamma:?} k={k} t={threads}: {:?} vs {:?}",
                            parallel.values(),
                            serial.values()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_fast_path_never_expands() {
        let (g, _) = ladder(120);
        let scores: Vec<f64> = (0..120)
            .map(|i| if i % 9 == 0 { 1.0 } else { 0.0 })
            .collect();
        let sizes = SizeIndex::build(g.view(), 2);
        let query = TopKQuery::new(5, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: Some(&sizes),
            diffs: None,
            candidates: None,
        };
        let r = run(
            &ctx,
            &BackwardOptions {
                gamma: GammaSpec::default(),
            },
            3,
        );
        assert_eq!(r.stats.nodes_evaluated, 0, "γ=0 must stay expansion-free");
        assert!(r.stats.exact_from_bound > 0);
    }

    #[test]
    fn stats_account_for_every_node() {
        let (g, scores) = ladder(150);
        let sizes = SizeIndex::build(g.view(), 2);
        let query = TopKQuery::new(3, Aggregate::Sum);
        let score_vec = ScoreVec::new(scores.to_vec());
        let ctx = Ctx {
            g: g.view(),
            hops: 2,
            scores: &scores,
            score_vec: &score_vec,
            query: &query,
            sizes: Some(&sizes),
            diffs: None,
            candidates: None,
        };
        let r = run(
            &ctx,
            &BackwardOptions {
                gamma: GammaSpec::Fixed(0.5),
            },
            4,
        );
        // verified (= n − pruned) candidates split between the exact
        // fast path and full expansions.
        assert_eq!(
            g.num_nodes() - r.stats.nodes_pruned,
            r.stats.exact_from_bound + r.stats.nodes_evaluated
        );
    }
}
