//! Instrumented h-hop neighborhood scanning.
//!
//! This is the single hot loop shared by every algorithm in the
//! suite. Unlike the generic [`lona_graph::traversal::KhopCollector`],
//! the scanner counts *edge accesses* — the cost unit of the paper's
//! analysis ("the number of edges to be accessed could be around
//! `m^h · |V|`").
//!
//! ## Canonical accumulation order
//!
//! Each BFS ply is split into two passes: **discovery** (walk the
//! frontier's adjacency rows, dedup against the epoch set) and
//! **accumulation** (a tight gather loop over the newly-visited ids,
//! *sorted ascending*). The sort makes the f64 summation order a
//! function of the visited *set* per depth — ascending id within each
//! depth — instead of an accident of adjacency layout. That is what
//! keeps serial results reproducible and lets a renumbered graph
//! (see [`lona_graph::order`]) agree with the natural-order engine:
//! under any numbering the scan accumulates depth-major, ascending-id
//! within depth. It also turns the hot loop into a `&[u32]` gather
//! over `&[f64]`, which the compiler can vectorize without caring how
//! the ids were produced.

use lona_graph::traversal::EpochSet;
use lona_graph::{CsrView, NodeId};

/// Outcome of one neighborhood scan.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ScanResult {
    /// `|S_h(u)|` — distinct proper neighbors found.
    pub count: usize,
    /// Accumulated score mass over `S_h(u)` (distance-weighted for the
    /// weighted scan).
    pub mass: f64,
    /// Plain (unweighted) score mass over `S_h(u)`. Equal to `mass`
    /// for [`NeighborhoodScanner::sum_scan`]; the weighted scan tracks
    /// it separately because Eq. 1 bounds operate on plain sums.
    pub raw_mass: f64,
    /// Adjacency entries touched during the expansion.
    pub edges: u64,
}

/// Reusable, allocation-free h-hop scanner.
#[derive(Clone, Debug)]
pub struct NeighborhoodScanner {
    visited: EpochSet,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl NeighborhoodScanner {
    /// Create a scanner for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        NeighborhoodScanner {
            visited: EpochSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Reset the epoch set and seed the frontier with `u`.
    #[inline]
    fn seed(&mut self, u: NodeId) {
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);
    }

    /// One BFS ply: expand the frontier's adjacency rows into the set
    /// of newly-visited nodes, sorted ascending, and make that set
    /// the new frontier. Returns the adjacency entries touched.
    ///
    /// The ascending sort is the canonical-accumulation contract (see
    /// the module docs): callers gather scores over the returned
    /// frontier in a separate tight loop, so the f64 summation order
    /// per depth depends only on the visited set, not on adjacency
    /// layout or node numbering.
    #[inline]
    fn discover(&mut self, g: CsrView<'_>) -> u64 {
        let mut edges = 0u64;
        self.next.clear();
        for &x in &self.frontier {
            let nbrs = g.neighbors(NodeId(x));
            edges += nbrs.len() as u64;
            for &v in nbrs {
                if self.visited.insert(v.0) {
                    self.next.push(v.0);
                }
            }
        }
        self.next.sort_unstable();
        std::mem::swap(&mut self.frontier, &mut self.next);
        edges
    }

    /// Sum `scores` over `S_h(u)`.
    pub fn sum_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32, scores: &[f64]) -> ScanResult {
        let mut res = ScanResult::default();
        self.seed(u);
        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            res.edges += self.discover(g);
            res.count += self.frontier.len();
            // Tight gather over this depth's sorted ids.
            let mut mass = 0.0;
            for &v in &self.frontier {
                mass += scores[v as usize];
            }
            res.mass += mass;
        }
        res.raw_mass = res.mass;
        res
    }

    /// Sum `scores[v] / dist(u, v)` over `S_h(u)` (footnote 1's
    /// inverse-distance connection strength).
    pub fn distance_weighted_scan(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        scores: &[f64],
    ) -> ScanResult {
        let mut res = ScanResult::default();
        self.seed(u);
        for depth in 1..=h {
            if self.frontier.is_empty() {
                break;
            }
            let inv = 1.0 / depth as f64;
            res.edges += self.discover(g);
            res.count += self.frontier.len();
            let mut raw = 0.0;
            for &v in &self.frontier {
                raw += scores[v as usize];
            }
            res.mass += raw * inv;
            res.raw_mass += raw;
        }
        res
    }

    /// Max of `scores` over `S_h(u)` (reported in `mass`; `raw_mass`
    /// carries the plain sum so SUM-based bounds stay available).
    pub fn max_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32, scores: &[f64]) -> ScanResult {
        let mut res = ScanResult::default();
        self.seed(u);
        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            res.edges += self.discover(g);
            res.count += self.frontier.len();
            let mut raw = 0.0;
            for &v in &self.frontier {
                let f = scores[v as usize];
                res.mass = res.mass.max(f);
                raw += f;
            }
            res.raw_mass += raw;
        }
        res
    }

    /// Depth-aware visit of `S_h(u)`: `f(v, dist)` with `dist` the
    /// 1-based hop distance. Returns `(|S_h(u)|, edges touched)`;
    /// used by the distance-weighted backward distribution.
    pub fn for_each_depth(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        mut f: impl FnMut(u32, u32),
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut edges = 0u64;
        self.seed(u);
        for depth in 1..=h {
            if self.frontier.is_empty() {
                break;
            }
            edges += self.discover(g);
            count += self.frontier.len();
            // Callbacks fire in the canonical order too (ascending id
            // within each depth), so distributions accumulate
            // identically under any node numbering.
            for &v in &self.frontier {
                f(v, depth);
            }
        }
        (count, edges)
    }

    /// Visit each member of `S_h(u)` (backward distribution). Returns
    /// `(|S_h(u)|, edges touched)`.
    pub fn for_each(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        mut f: impl FnMut(u32),
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut edges = 0u64;
        self.seed(u);
        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            edges += self.discover(g);
            count += self.frontier.len();
            for &v in &self.frontier {
                f(v);
            }
        }
        (count, edges)
    }

    /// `|S_h(u)|` plus the edge count of the expansion.
    pub fn size_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32) -> (usize, u64) {
        self.for_each(g, u, h, |_| {})
    }

    /// Mark `S_h(u)` in this scanner's visited set and return
    /// `|S_h(u)|`. The marks stay valid until the next scan and can be
    /// probed with [`NeighborhoodScanner::marked`]; the differential
    /// index builder uses this for its intersection counting.
    pub fn mark(&mut self, g: CsrView<'_>, u: NodeId, h: u32) -> usize {
        let (count, _) = self.for_each(g, u, h, |_| {});
        // `for_each` marked u too; unmark so probes see S(u) exactly.
        self.visited.remove(u.0);
        count
    }

    /// Whether `v` was marked by the last [`NeighborhoodScanner::mark`].
    #[inline]
    pub fn marked(&self, v: NodeId) -> bool {
        self.visited.contains(v.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn sample() -> CsrGraph {
        // 0-1-2-3 path + 1-4
        GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (1, 4)])
            .build()
            .unwrap()
    }

    #[test]
    fn sum_scan_counts_and_mass() {
        let g = sample();
        let scores = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        // S_2(0) = {1, 2, 4}
        assert_eq!(r.count, 3);
        assert!((r.mass - (0.2 + 0.3 + 0.5)).abs() < 1e-12);
        // edges: deg(0)=1 at level 1; deg(1)=3 at level 2
        assert_eq!(r.edges, 4);
    }

    #[test]
    fn distance_weighted_scan_divides_by_depth() {
        let g = sample();
        let scores = vec![1.0; 5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.distance_weighted_scan(g.view(), NodeId(0), 2, &scores);
        // node 1 at depth 1 (1.0), nodes 2 and 4 at depth 2 (0.5 each)
        assert!((r.mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn for_each_visits_neighborhood() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let mut seen = vec![];
        let (count, _) = s.for_each(g.view(), NodeId(3), 2, |v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(count, 2);
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn mark_and_probe() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let n = s.mark(g.view(), NodeId(0), 2);
        assert_eq!(n, 3);
        assert!(s.marked(NodeId(1)));
        assert!(s.marked(NodeId(2)));
        assert!(s.marked(NodeId(4)));
        assert!(!s.marked(NodeId(0)), "source must not be marked");
        assert!(!s.marked(NodeId(3)));
    }

    #[test]
    fn scan_resets_between_calls() {
        let g = sample();
        let scores = vec![1.0; 5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let a = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        let _ = s.sum_scan(g.view(), NodeId(3), 1, &scores);
        let a2 = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        assert_eq!(a, a2);
    }

    #[test]
    fn zero_hop_scan_is_empty() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.sum_scan(g.view(), NodeId(1), 0, &[0.0; 5]);
        assert_eq!(r, ScanResult::default());
    }
}
