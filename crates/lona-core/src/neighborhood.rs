//! Instrumented h-hop neighborhood scanning.
//!
//! This is the single hot loop shared by every algorithm in the
//! suite. Unlike the generic [`lona_graph::traversal::KhopCollector`],
//! the scanner fuses score accumulation into the traversal and counts
//! *edge accesses* — the cost unit of the paper's analysis ("the
//! number of edges to be accessed could be around `m^h · |V|`").

use lona_graph::traversal::EpochSet;
use lona_graph::{CsrView, NodeId};

/// Outcome of one neighborhood scan.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ScanResult {
    /// `|S_h(u)|` — distinct proper neighbors found.
    pub count: usize,
    /// Accumulated score mass over `S_h(u)` (distance-weighted for the
    /// weighted scan).
    pub mass: f64,
    /// Plain (unweighted) score mass over `S_h(u)`. Equal to `mass`
    /// for [`NeighborhoodScanner::sum_scan`]; the weighted scan tracks
    /// it separately because Eq. 1 bounds operate on plain sums.
    pub raw_mass: f64,
    /// Adjacency entries touched during the expansion.
    pub edges: u64,
}

/// Reusable, allocation-free h-hop scanner.
#[derive(Clone, Debug)]
pub struct NeighborhoodScanner {
    visited: EpochSet,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl NeighborhoodScanner {
    /// Create a scanner for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        NeighborhoodScanner {
            visited: EpochSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Sum `scores` over `S_h(u)`.
    pub fn sum_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32, scores: &[f64]) -> ScanResult {
        let mut res = ScanResult::default();
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);

        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                let nbrs = g.neighbors(NodeId(x));
                res.edges += nbrs.len() as u64;
                for &v in nbrs {
                    if self.visited.insert(v.0) {
                        res.count += 1;
                        res.mass += scores[v.index()];
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        res.raw_mass = res.mass;
        res
    }

    /// Sum `scores[v] / dist(u, v)` over `S_h(u)` (footnote 1's
    /// inverse-distance connection strength).
    pub fn distance_weighted_scan(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        scores: &[f64],
    ) -> ScanResult {
        let mut res = ScanResult::default();
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);

        for depth in 1..=h {
            if self.frontier.is_empty() {
                break;
            }
            let inv = 1.0 / depth as f64;
            self.next.clear();
            for &x in &self.frontier {
                let nbrs = g.neighbors(NodeId(x));
                res.edges += nbrs.len() as u64;
                for &v in nbrs {
                    if self.visited.insert(v.0) {
                        res.count += 1;
                        let f = scores[v.index()];
                        res.mass += f * inv;
                        res.raw_mass += f;
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        res
    }

    /// Max of `scores` over `S_h(u)` (reported in `mass`; `raw_mass`
    /// carries the plain sum so SUM-based bounds stay available).
    pub fn max_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32, scores: &[f64]) -> ScanResult {
        let mut res = ScanResult::default();
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);

        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                let nbrs = g.neighbors(NodeId(x));
                res.edges += nbrs.len() as u64;
                for &v in nbrs {
                    if self.visited.insert(v.0) {
                        res.count += 1;
                        let f = scores[v.index()];
                        res.mass = res.mass.max(f);
                        res.raw_mass += f;
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        res
    }

    /// Depth-aware visit of `S_h(u)`: `f(v, dist)` with `dist` the
    /// 1-based hop distance. Returns `(|S_h(u)|, edges touched)`;
    /// used by the distance-weighted backward distribution.
    pub fn for_each_depth(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        mut f: impl FnMut(u32, u32),
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut edges = 0u64;
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);

        for depth in 1..=h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                let nbrs = g.neighbors(NodeId(x));
                edges += nbrs.len() as u64;
                for &v in nbrs {
                    if self.visited.insert(v.0) {
                        count += 1;
                        f(v.0, depth);
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        (count, edges)
    }

    /// Visit each member of `S_h(u)` (backward distribution). Returns
    /// `(|S_h(u)|, edges touched)`.
    pub fn for_each(
        &mut self,
        g: CsrView<'_>,
        u: NodeId,
        h: u32,
        mut f: impl FnMut(u32),
    ) -> (usize, u64) {
        let mut count = 0usize;
        let mut edges = 0u64;
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);

        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                let nbrs = g.neighbors(NodeId(x));
                edges += nbrs.len() as u64;
                for &v in nbrs {
                    if self.visited.insert(v.0) {
                        count += 1;
                        f(v.0);
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        (count, edges)
    }

    /// `|S_h(u)|` plus the edge count of the expansion.
    pub fn size_scan(&mut self, g: CsrView<'_>, u: NodeId, h: u32) -> (usize, u64) {
        self.for_each(g, u, h, |_| {})
    }

    /// Mark `S_h(u)` in this scanner's visited set and return
    /// `|S_h(u)|`. The marks stay valid until the next scan and can be
    /// probed with [`NeighborhoodScanner::marked`]; the differential
    /// index builder uses this for its intersection counting.
    pub fn mark(&mut self, g: CsrView<'_>, u: NodeId, h: u32) -> usize {
        let (count, _) = self.for_each(g, u, h, |_| {});
        // `for_each` marked u too; unmark so probes see S(u) exactly.
        self.visited.remove(u.0);
        count
    }

    /// Whether `v` was marked by the last [`NeighborhoodScanner::mark`].
    #[inline]
    pub fn marked(&self, v: NodeId) -> bool {
        self.visited.contains(v.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn sample() -> CsrGraph {
        // 0-1-2-3 path + 1-4
        GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (1, 4)])
            .build()
            .unwrap()
    }

    #[test]
    fn sum_scan_counts_and_mass() {
        let g = sample();
        let scores = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        // S_2(0) = {1, 2, 4}
        assert_eq!(r.count, 3);
        assert!((r.mass - (0.2 + 0.3 + 0.5)).abs() < 1e-12);
        // edges: deg(0)=1 at level 1; deg(1)=3 at level 2
        assert_eq!(r.edges, 4);
    }

    #[test]
    fn distance_weighted_scan_divides_by_depth() {
        let g = sample();
        let scores = vec![1.0; 5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.distance_weighted_scan(g.view(), NodeId(0), 2, &scores);
        // node 1 at depth 1 (1.0), nodes 2 and 4 at depth 2 (0.5 each)
        assert!((r.mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn for_each_visits_neighborhood() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let mut seen = vec![];
        let (count, _) = s.for_each(g.view(), NodeId(3), 2, |v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(count, 2);
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn mark_and_probe() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let n = s.mark(g.view(), NodeId(0), 2);
        assert_eq!(n, 3);
        assert!(s.marked(NodeId(1)));
        assert!(s.marked(NodeId(2)));
        assert!(s.marked(NodeId(4)));
        assert!(!s.marked(NodeId(0)), "source must not be marked");
        assert!(!s.marked(NodeId(3)));
    }

    #[test]
    fn scan_resets_between_calls() {
        let g = sample();
        let scores = vec![1.0; 5];
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let a = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        let _ = s.sum_scan(g.view(), NodeId(3), 1, &scores);
        let a2 = s.sum_scan(g.view(), NodeId(0), 2, &scores);
        assert_eq!(a, a2);
    }

    #[test]
    fn zero_hop_scan_is_empty() {
        let g = sample();
        let mut s = NeighborhoodScanner::new(g.num_nodes());
        let r = s.sum_scan(g.view(), NodeId(1), 0, &[0.0; 5]);
        assert_eq!(r, ScanResult::default());
    }
}
