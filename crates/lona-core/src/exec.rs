//! Shared parallel-execution primitives.
//!
//! Every multi-threaded code path in the engine — the index builders,
//! `ParallelBase`, and the parallel LONA algorithms — is built from
//! the three primitives here:
//!
//! * [`resolve_threads`] — one policy for turning a requested worker
//!   count (0 = one per core) into an actual one;
//! * [`ChunkCursor`] — an atomic work-stealing cursor handing out
//!   contiguous index ranges, so skewed per-item cost (hub nodes!)
//!   cannot leave a statically-partitioned worker holding the bag;
//! * [`SharedThreshold`] — a monotonically-rising `f64` lower bound
//!   shared across workers, the shared-memory form of the threshold
//!   algorithm's `topklbound` (Fagin et al.). Workers prune against
//!   it and raise it as their private top-k heaps fill.
//!
//! Soundness of sharing the threshold: the value only ever rises
//! ([`SharedThreshold::raise`] is a compare-and-swap max), so a worker
//! reading a stale value prunes *less* than it could, never more —
//! staleness is conservative, and no lock is needed (DESIGN.md §7).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Resolve a requested worker count against the work available.
///
/// `requested == 0` means one worker per core (the CLI's `--threads 0`
/// and `Algorithm::parallel_*` defaults); any other value is taken
/// verbatim. The result is clamped to `[1, work_items]` so no worker
/// can ever start with nothing to do.
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, work_items.max(1))
}

/// An atomic cursor over `0..items`, handing out disjoint contiguous
/// chunks to whichever worker asks next.
///
/// Chunks are claimed with one `fetch_add`, so stealing costs a single
/// atomic RMW per chunk regardless of worker count, and every index is
/// handed out exactly once.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    items: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// Cursor over `0..items` with a chunk size balancing steal
    /// overhead against load balance: ~8 chunks per worker, at least 1
    /// item and at most 4096 per chunk.
    pub fn new(items: usize, threads: usize) -> Self {
        let chunk = (items / (threads.max(1) * 8)).clamp(1, 4096);
        Self::with_chunk(items, chunk)
    }

    /// Cursor over `0..items` with an explicit chunk size (≥ 1).
    /// Small chunks propagate a [`SharedThreshold`] faster; large ones
    /// amortize the claim better.
    pub fn with_chunk(items: usize, chunk: usize) -> Self {
        ChunkCursor {
            next: AtomicUsize::new(0),
            items,
            chunk: chunk.max(1),
        }
    }

    /// Claim the next chunk, or `None` when the range is exhausted.
    pub fn next(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.items {
            return None;
        }
        Some(start..(start + self.chunk).min(self.items))
    }
}

/// A monotonically-rising lower bound shared across workers.
///
/// Stored as the bit pattern of an `f64` in an `AtomicU64`; updates go
/// through a compare-and-swap loop that only ever replaces a value
/// with a strictly larger one, so concurrent raises cannot lose the
/// maximum and readers can use `Relaxed` loads: any value they see is
/// a *past* (hence smaller-or-equal) threshold, and pruning against a
/// lower threshold is always sound.
#[derive(Debug)]
pub struct SharedThreshold {
    bits: AtomicU64,
}

impl SharedThreshold {
    /// A threshold starting at `-∞` (no pruning power).
    pub fn new() -> Self {
        SharedThreshold {
            bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The current bound. Never decreases over the cursor's lifetime.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Raise the bound to at least `value` (no-op if already higher).
    #[inline]
    pub fn raise(&self, value: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        while value > f64::from_bits(current) {
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }
}

impl Default for SharedThreshold {
    fn default() -> Self {
        Self::new()
    }
}

/// Run `threads` scoped workers and collect their results in worker
/// order. With a single worker the closure runs on the calling thread
/// (no spawn cost, and tests of the parallel paths stay debuggable).
pub fn run_workers<T, F>(threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 {
        return vec![worker(0)];
    }
    let mut out = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let worker = &worker;
                scope.spawn(move |_| worker(t))
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("exec worker panicked"));
        }
    })
    .expect("exec scope failed");
    out
}

/// Evaluate `f(i)` for every `i` in `0..items` across `threads`
/// workers (work-stealing chunks) and collect the results in index
/// order. The single-worker path runs on the calling thread with no
/// cursor, so `map_indexed(1, ..)` is exactly a sequential loop —
/// the batch layer relies on this for its determinism guarantee.
pub fn map_indexed<T, F>(threads: usize, items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads, items);
    if threads <= 1 {
        return (0..items).map(f).collect();
    }
    let cursor = ChunkCursor::new(items, threads);
    let parts = run_workers(threads, |_| {
        let mut out = Vec::new();
        while let Some(range) = cursor.next() {
            for i in range {
                out.push((i, f(i)));
            }
        }
        out
    });
    let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
    for (i, value) in parts.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("map_indexed covered every index"))
        .collect()
}

/// Split `data` into `threads` contiguous slices and hand each to a
/// worker as `worker(offset, slice)`. Used by builders that fill a
/// pre-sized output buffer in place (e.g. the size index).
pub fn partition_mut<T, F>(data: &mut [T], threads: usize, worker: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        worker(0, data);
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (t, slice) in data.chunks_mut(chunk).enumerate() {
            let worker = &worker;
            scope.spawn(move |_| worker(t * chunk, slice));
        }
    })
    .expect("exec partition scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_policy() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(4, 2), 2); // clamped to work
        assert_eq!(resolve_threads(1, 0), 1); // never zero
        assert!(resolve_threads(0, 1_000_000) >= 1); // 0 = per-core
    }

    #[test]
    fn cursor_covers_every_index_once() {
        let cursor = ChunkCursor::with_chunk(1003, 17);
        let mut seen = vec![false; 1003];
        while let Some(r) = cursor.next() {
            for i in r {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "cursor skipped indexes");
    }

    #[test]
    fn cursor_is_disjoint_across_workers() {
        let cursor = ChunkCursor::new(10_000, 4);
        let claimed = AtomicUsize::new(0);
        let counts = run_workers(4, |_| {
            let mut local = 0usize;
            while let Some(r) = cursor.next() {
                local += r.len();
            }
            claimed.fetch_add(local, Ordering::Relaxed);
            local
        });
        assert_eq!(claimed.load(Ordering::Relaxed), 10_000);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn empty_cursor_yields_nothing() {
        assert!(ChunkCursor::new(0, 4).next().is_none());
    }

    #[test]
    fn threshold_only_rises() {
        let t = SharedThreshold::new();
        assert_eq!(t.get(), f64::NEG_INFINITY);
        t.raise(1.5);
        assert_eq!(t.get(), 1.5);
        t.raise(0.5); // lower: ignored
        assert_eq!(t.get(), 1.5);
        t.raise(2.0);
        assert_eq!(t.get(), 2.0);
    }

    #[test]
    fn threshold_handles_negatives() {
        // f64 bit patterns do not order like floats for negatives; the
        // CAS loop must compare as floats.
        let t = SharedThreshold::new();
        t.raise(-3.0);
        assert_eq!(t.get(), -3.0);
        t.raise(-1.0);
        assert_eq!(t.get(), -1.0);
        t.raise(-2.0);
        assert_eq!(t.get(), -1.0);
    }

    #[test]
    fn concurrent_raise_keeps_max() {
        let t = SharedThreshold::new();
        run_workers(4, |w| {
            for i in 0..1000 {
                t.raise((w * 1000 + i) as f64);
            }
        });
        assert_eq!(t.get(), 3999.0);
    }

    #[test]
    fn partition_mut_fills_everything() {
        let mut data = vec![0usize; 777];
        partition_mut(&mut data, 4, |offset, slice| {
            for (i, slot) in slice.iter_mut().enumerate() {
                *slot = offset + i + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 4] {
            let got = map_indexed(threads, 97, |i| i * 3);
            assert_eq!(got, (0..97).map(|i| i * 3).collect::<Vec<_>>(), "{threads}");
        }
        assert!(map_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn run_workers_orders_results() {
        assert_eq!(run_workers(3, |t| t * 10), vec![0, 10, 20]);
        assert_eq!(run_workers(1, |t| t), vec![0]);
    }
}
