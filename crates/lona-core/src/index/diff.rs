//! The differential index `delta(v − u) = |S_h(v) \ S_h(u)|`.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU32, Ordering};

use lona_graph::{CsrView, GraphError, MapSlice, NodeId};

use crate::exec::{self, ChunkCursor};
use crate::index::{SizeIndex, U32Store};
use crate::neighborhood::NeighborhoodScanner;

const MAGIC: &[u8; 8] = b"LONADIF1";

/// Per-edge differential index (paper §III).
///
/// For every adjacency entry `u -> v` the index stores
/// `delta(v − u) = |S_h(v) \ S_h(u)|`: how many of `v`'s h-hop
/// neighbors are *not* h-hop neighbors of `u`. When forward processing
/// has just evaluated `F(u)` exactly, Eq. 1 turns this number into an
/// upper bound for the yet-unevaluated neighbor `v`.
///
/// Entries are laid out parallel to the CSR adjacency array, so the
/// lookup for neighbor `i` of `u` is one array read.
///
/// ## Build strategy
///
/// `delta(v − u) = N(v) − |S(u) ∩ S(v)|`, and the intersection is
/// symmetric — so per undirected edge one intersection count yields
/// *both* directions:
///
/// 1. mark `S(u)` in an epoch set (one h-hop expansion);
/// 2. for each neighbor `v > u`, expand `S(v)` counting marked nodes
///    → `|S(u) ∩ S(v)|`;
/// 3. `delta(v − u) = N(v) − inter`, `delta(u − v) = N(u) − inter`.
///
/// Total: `n + m` neighborhood expansions — the offline cost the paper
/// accepts for its pre-computed index. The build parallelizes over
/// source nodes; both directions of an edge are written by the thread
/// owning the lower endpoint, through relaxed atomics (each slot is
/// written exactly once).
#[derive(Clone, Debug)]
pub struct DiffIndex {
    hops: u32,
    deltas: U32Store,
}

impl PartialEq for DiffIndex {
    fn eq(&self, other: &Self) -> bool {
        self.hops == other.hops && self.as_slice() == other.as_slice()
    }
}

impl Eq for DiffIndex {}

impl DiffIndex {
    /// Build the index for `g` at radius `hops`, given the matching
    /// [`SizeIndex`].
    ///
    /// # Panics
    /// Panics if `g` is directed (Eq. 1's soundness needs mutual
    /// adjacency; see `bounds.rs`) or if `sizes` was built at a
    /// different radius.
    pub fn build(g: CsrView<'_>, hops: u32, sizes: &SizeIndex) -> Self {
        assert!(
            !g.is_directed(),
            "the differential index requires an undirected graph"
        );
        assert_eq!(
            sizes.hops(),
            hops,
            "size index was built for h={}",
            sizes.hops()
        );
        assert_eq!(
            sizes.len(),
            g.num_nodes(),
            "size index covers a different graph"
        );

        let entries = g.num_adjacency_entries();
        let deltas: Vec<AtomicU32> = (0..entries).map(|_| AtomicU32::new(0)).collect();
        Self::build_impl(g, hops, sizes, deltas)
    }

    fn build_impl(g: CsrView<'_>, hops: u32, sizes: &SizeIndex, deltas: Vec<AtomicU32>) -> Self {
        let n = g.num_nodes();
        let threads = exec::resolve_threads(0, n);
        let deltas_ref = &deltas;
        // Work-stealing chunks: per-node cost is the whole incident
        // neighborhood expansion, so hub-heavy ranges would starve a
        // static partition.
        let cursor = ChunkCursor::new(n, threads);

        exec::run_workers(threads, |_| {
            let mut marker = NeighborhoodScanner::new(n);
            let mut expander = NeighborhoodScanner::new(n);
            while let Some(range) = cursor.next() {
                for u_idx in range {
                    let u = NodeId(u_idx as u32);
                    let n_u = sizes.get(u) as u32;
                    if g.neighbors(u).iter().all(|&v| v.0 < u.0) {
                        continue;
                    }
                    marker.mark(g, u, hops);
                    let u_range = g.adjacency_range(u);
                    for (i, &v) in g.neighbors(u).iter().enumerate() {
                        if v.0 < u.0 {
                            continue;
                        }
                        let mut inter = 0u32;
                        expander.for_each(g, v, hops, |w| {
                            if marker.marked(NodeId(w)) {
                                inter += 1;
                            }
                        });
                        let n_v = sizes.get(v) as u32;
                        debug_assert!(inter <= n_v && inter <= n_u);
                        // delta(v − u) lives at u's entry for v:
                        deltas_ref[u_range.start + i].store(n_v - inter, Ordering::Relaxed);
                        // delta(u − v) lives at v's entry for u:
                        let back = g
                            .adjacency_index(v, u)
                            .expect("undirected edge must exist both ways");
                        deltas_ref[back].store(n_u - inter, Ordering::Relaxed);
                    }
                }
            }
        });

        let deltas = deltas.into_iter().map(AtomicU32::into_inner).collect();
        DiffIndex {
            hops,
            deltas: U32Store::Owned(deltas),
        }
    }

    /// Wrap an already-computed payload (the delta-repair path, which
    /// patches entries of an existing index instead of rebuilding).
    pub(crate) fn from_owned(hops: u32, deltas: Vec<u32>) -> Self {
        DiffIndex {
            hops,
            deltas: U32Store::Owned(deltas),
        }
    }

    /// Wrap a zero-copy view of a compiled file's differential-index
    /// section. No build, no copy; the compiled loader cross-checks
    /// the length against the mapped graph's adjacency array first.
    pub fn from_mapped(hops: u32, deltas: MapSlice<u32>) -> Self {
        DiffIndex {
            hops,
            deltas: U32Store::Mapped(deltas),
        }
    }

    /// The hop radius this index was built for.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Number of adjacency entries covered.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Raw slice access (one `u32` per adjacency entry).
    #[inline(always)]
    pub fn as_slice(&self) -> &[u32] {
        self.deltas.as_slice()
    }

    /// `delta(v − u)` where `v` is the neighbor at `adjacency_pos`
    /// within `u`'s adjacency range (see
    /// [`lona_graph::CsrGraph::adjacency_range`]).
    #[inline(always)]
    pub fn delta_at(&self, adjacency_pos: usize) -> u32 {
        self.as_slice()[adjacency_pos]
    }

    /// `delta(v − u)` by endpoint lookup (binary search; prefer
    /// [`DiffIndex::delta_at`] in loops that already track positions).
    pub fn delta(&self, g: CsrView<'_>, u: NodeId, v: NodeId) -> Option<u32> {
        g.adjacency_index(u, v).map(|pos| self.as_slice()[pos])
    }

    /// Approximate resident memory, in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.as_slice())
    }

    /// Serialize.
    pub fn write_to<W: Write>(&self, mut w: W) -> lona_graph::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.hops.to_le_bytes())?;
        w.write_all(&(self.as_slice().len() as u64).to_le_bytes())?;
        let mut buf = Vec::with_capacity(4 * 16384);
        for chunk in self.as_slice().chunks(16384) {
            buf.clear();
            for &d in chunk {
                buf.extend_from_slice(&d.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserialize.
    pub fn read_from<R: Read>(mut r: R) -> lona_graph::Result<Self> {
        let mut header = [0u8; 8 + 4 + 8];
        r.read_exact(&mut header).map_err(GraphError::Io)?;
        if &header[..8] != MAGIC {
            return Err(GraphError::BadSnapshot("bad diff-index magic".into()));
        }
        let hops = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let len = u64::from_le_bytes(header[12..20].try_into().unwrap()) as usize;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw).map_err(GraphError::Io)?;
        let deltas = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(DiffIndex {
            hops,
            deltas: U32Store::Owned(deltas),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::traversal::bfs_distances;
    use lona_graph::{CsrGraph, GraphBuilder};

    /// Brute-force `delta(v − u)` via BFS distance sets.
    fn reference_delta(g: &CsrGraph, u: NodeId, v: NodeId, h: u32) -> u32 {
        let du = bfs_distances(g, u);
        let dv = bfs_distances(g, v);
        (0..g.num_nodes() as u32)
            .filter(|&w| {
                let in_sv = w != v.0 && dv[w as usize] <= h;
                let in_su = w != u.0 && du[w as usize] <= h;
                in_sv && !in_su
            })
            .count() as u32
    }

    fn check_graph(g: &CsrGraph, h: u32) {
        let sizes = SizeIndex::build(g.view(), h);
        let idx = DiffIndex::build(g.view(), h, &sizes);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert_eq!(
                    idx.delta(g.view(), u, v).unwrap(),
                    reference_delta(g, u, v, h),
                    "delta({v:?} - {u:?}) at h={h}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_path() {
        let g = GraphBuilder::undirected()
            .extend_edges((0..5).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        check_graph(&g, 1);
        check_graph(&g, 2);
    }

    #[test]
    fn matches_reference_on_clustered_graph() {
        // Two triangles joined by a bridge.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
            .build()
            .unwrap();
        check_graph(&g, 1);
        check_graph(&g, 2);
        check_graph(&g, 3);
    }

    #[test]
    fn matches_reference_on_star() {
        let g = GraphBuilder::undirected()
            .extend_edges((1..=6).map(|i| (0, i)))
            .build()
            .unwrap();
        check_graph(&g, 1);
        check_graph(&g, 2);
    }

    #[test]
    fn round_trip() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let sizes = SizeIndex::build(g.view(), 2);
        let idx = DiffIndex::build(g.view(), 2, &sizes);
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        assert_eq!(DiffIndex::read_from(&buf[..]).unwrap(), idx);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let g = GraphBuilder::directed().add_edge(0, 1).build().unwrap();
        let sizes = SizeIndex::build(g.view(), 2);
        let _ = DiffIndex::build(g.view(), 2, &sizes);
    }

    #[test]
    #[should_panic(expected = "size index was built for")]
    fn hop_mismatch_rejected() {
        let g = GraphBuilder::undirected().add_edge(0, 1).build().unwrap();
        let sizes = SizeIndex::build(g.view(), 1);
        let _ = DiffIndex::build(g.view(), 2, &sizes);
    }
}
