//! The h-hop neighborhood-size index `N(v)`.

use std::io::{Read, Write};

use lona_graph::{CsrView, GraphError, MapSlice, NodeId};

use crate::exec;
use crate::index::U32Store;
use crate::neighborhood::NeighborhoodScanner;

const MAGIC: &[u8; 8] = b"LONASIZ1";

/// `N(v) = |S_h(v)|` for every node, at a fixed hop radius.
///
/// One full sweep of the graph (the cost of a single Base query);
/// amortized across every subsequent query on the same graph. The
/// build runs on all available cores. Alternatively the payload can be
/// a zero-copy view into a compiled file ([`SizeIndex::from_mapped`]),
/// skipping the build entirely.
#[derive(Clone, Debug)]
pub struct SizeIndex {
    hops: u32,
    sizes: U32Store,
}

impl PartialEq for SizeIndex {
    fn eq(&self, other: &Self) -> bool {
        self.hops == other.hops && self.as_slice() == other.as_slice()
    }
}

impl Eq for SizeIndex {}

impl SizeIndex {
    /// Build the index for `g` at radius `hops`.
    pub fn build(g: CsrView<'_>, hops: u32) -> Self {
        let n = g.num_nodes();
        let mut sizes = vec![0u32; n];
        let threads = if n < 1024 {
            1
        } else {
            exec::resolve_threads(0, n)
        };

        exec::partition_mut(&mut sizes, threads, |start, slice| {
            let mut scanner = NeighborhoodScanner::new(n);
            for (i, slot) in slice.iter_mut().enumerate() {
                let u = NodeId((start + i) as u32);
                let (count, _) = scanner.size_scan(g, u, hops);
                *slot = count as u32;
            }
        });
        SizeIndex {
            hops,
            sizes: U32Store::Owned(sizes),
        }
    }

    /// Wrap an already-computed payload (the delta-repair path, which
    /// patches a copy of an existing index instead of rebuilding).
    pub(crate) fn from_owned(hops: u32, sizes: Vec<u32>) -> Self {
        SizeIndex {
            hops,
            sizes: U32Store::Owned(sizes),
        }
    }

    /// Wrap a zero-copy view of a compiled file's size section. No
    /// build, no copy; the compiled loader cross-checks the length
    /// against the mapped graph before calling this.
    pub fn from_mapped(hops: u32, sizes: MapSlice<u32>) -> Self {
        SizeIndex {
            hops,
            sizes: U32Store::Mapped(sizes),
        }
    }

    /// The hop radius this index was built for.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// `N(v)` — the proper h-hop neighborhood size of `v`.
    #[inline(always)]
    pub fn get(&self, v: NodeId) -> usize {
        self.as_slice()[v.index()] as usize
    }

    /// Raw slice access for hot loops.
    #[inline(always)]
    pub fn as_slice(&self) -> &[u32] {
        self.sizes.as_slice()
    }

    /// Serialize (see `io::binary` for the format conventions).
    pub fn write_to<W: Write>(&self, mut w: W) -> lona_graph::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.hops.to_le_bytes())?;
        w.write_all(&(self.as_slice().len() as u64).to_le_bytes())?;
        let mut buf = Vec::with_capacity(4 * 16384);
        for chunk in self.as_slice().chunks(16384) {
            buf.clear();
            for &s in chunk {
                buf.extend_from_slice(&s.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserialize.
    pub fn read_from<R: Read>(mut r: R) -> lona_graph::Result<Self> {
        let mut header = [0u8; 8 + 4 + 8];
        r.read_exact(&mut header).map_err(GraphError::Io)?;
        if &header[..8] != MAGIC {
            return Err(GraphError::BadSnapshot("bad size-index magic".into()));
        }
        let hops = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let len = u64::from_le_bytes(header[12..20].try_into().unwrap()) as usize;
        let mut raw = vec![0u8; len * 4];
        r.read_exact(&mut raw).map_err(GraphError::Io)?;
        let sizes = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(SizeIndex {
            hops,
            sizes: U32Store::Owned(sizes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lona_graph::traversal::bfs_distances;
    use lona_graph::{CsrGraph, GraphBuilder};

    fn reference_sizes(g: &CsrGraph, h: u32) -> Vec<u32> {
        (0..g.num_nodes() as u32)
            .map(|u| {
                let d = bfs_distances(g, NodeId(u));
                d.iter().filter(|&&x| x != 0 && x <= h).count() as u32
            })
            .collect()
    }

    #[test]
    fn matches_bfs_reference_small() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (0, 5)])
            .build()
            .unwrap();
        for h in 1..=3 {
            let idx = SizeIndex::build(g.view(), h);
            assert_eq!(idx.as_slice(), &reference_sizes(&g, h)[..], "h={h}");
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Big enough to take the parallel path (>= 1024 nodes).
        let mut b = GraphBuilder::undirected();
        for i in 0u32..2000 {
            b.push_edge(i, (i + 1) % 2000);
            b.push_edge(i, (i * 13 + 7) % 2000);
        }
        let g = b.build().unwrap();
        let idx = SizeIndex::build(g.view(), 2);
        assert_eq!(idx.as_slice(), &reference_sizes(&g, 2)[..]);
    }

    #[test]
    fn round_trip() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let idx = SizeIndex::build(g.view(), 2);
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        let idx2 = SizeIndex::read_from(&buf[..]).unwrap();
        assert_eq!(idx, idx2);
    }

    #[test]
    fn bad_magic_rejected() {
        let g = GraphBuilder::undirected().add_edge(0, 1).build().unwrap();
        let idx = SizeIndex::build(g.view(), 1);
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        buf[0] ^= 0xff;
        assert!(SizeIndex::read_from(&buf[..]).is_err());
    }

    #[test]
    fn isolated_nodes_have_zero() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let idx = SizeIndex::build(g.view(), 2);
        assert_eq!(idx.get(NodeId(2)), 0);
    }
}
