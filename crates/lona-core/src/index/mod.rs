//! Pre-computed per-node and per-edge indexes.
//!
//! * [`SizeIndex`] — `N(v) = |S_h(v)|` for every node; needed by the
//!   capacity side of Eq. 1, by Eq. 2/3, and by AVG finalization in
//!   the backward algorithms.
//! * [`DiffIndex`] — the paper's *differential index*
//!   `delta(v − u) = |S_h(v) \ S_h(u)|` for every directed adjacency
//!   entry; the heart of forward pruning.
//!
//! Both are built once per `(graph, h)` pair, in parallel, and can be
//! serialized so benchmark runs amortize the build.

mod diff;
mod size;

pub use diff::DiffIndex;
pub use size::SizeIndex;
