//! Pre-computed per-node and per-edge indexes.
//!
//! * [`SizeIndex`] — `N(v) = |S_h(v)|` for every node; needed by the
//!   capacity side of Eq. 1, by Eq. 2/3, and by AVG finalization in
//!   the backward algorithms.
//! * [`DiffIndex`] — the paper's *differential index*
//!   `delta(v − u) = |S_h(v) \ S_h(u)|` for every directed adjacency
//!   entry; the heart of forward pruning.
//!
//! Both are built once per `(graph, h)` pair, in parallel, and can be
//! serialized so benchmark runs amortize the build.

mod diff;
mod size;

pub use diff::DiffIndex;
pub use size::SizeIndex;

use lona_graph::MapSlice;

/// Backing storage for an index's `u32` payload: owned by the index
/// (the build and `read_from` paths) or a zero-copy view into a
/// compiled file's section (the `from_mapped` paths).
#[derive(Clone, Debug)]
pub(crate) enum U32Store {
    Owned(Vec<u32>),
    Mapped(MapSlice<u32>),
}

impl U32Store {
    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            U32Store::Owned(v) => v,
            U32Store::Mapped(m) => m.as_slice(),
        }
    }
}
