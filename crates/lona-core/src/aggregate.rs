//! Neighborhood aggregation functions (paper Definition 2 and
//! footnote 1).

/// The aggregate `F(u)` computed over a node's h-hop neighborhood.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `F(u) = Σ_{v ∈ S_h(u)} f(v)` (plus `f(u)` when the query
    /// includes self).
    Sum,
    /// `F(u) = Σ f(v) / |S_h(u)|` — the SUM divided by the exact
    /// neighborhood size.
    Avg,
    /// Footnote 1's connection-strength weighting with
    /// `w(u, v) = 1 / dist(u, v)` (inverse hop distance):
    /// `F(u) = Σ f(v) / dist(u, v)`.
    ///
    /// Every term is ≤ its SUM counterpart, so all SUM upper bounds
    /// remain valid (just looser) and both LONA pruners accept this
    /// aggregate unchanged.
    DistanceWeightedSum,
    /// `F(u) = max_{v ∈ S_h(u)} f(v)` — the extension exercise from
    /// the paper's conclusion ("the similar ideas could be extended
    /// to other more complicated functions"). The accumulated "mass"
    /// for this aggregate is a running maximum, the backward
    /// distribution takes per-node maxima, and dedicated max bounds
    /// replace Eq. 1/3 (see `bounds::forward_max_bound`).
    Max,
}

impl Aggregate {
    /// Short name used in bench ids and reports.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Sum => "sum",
            Aggregate::Avg => "avg",
            Aggregate::DistanceWeightedSum => "dwsum",
            Aggregate::Max => "max",
        }
    }

    /// Whether computing this aggregate requires the exact
    /// neighborhood size `N(v)` even when the raw sum is known.
    pub fn needs_size(self) -> bool {
        matches!(self, Aggregate::Avg)
    }

    /// Finalize an aggregate value from the accumulated neighbor mass.
    ///
    /// * `mass` — Σ f(v) over the proper neighborhood (already
    ///   distance-weighted for [`Aggregate::DistanceWeightedSum`];
    ///   the running *maximum* for [`Aggregate::Max`]);
    /// * `n` — `|S_h(u)|`, the proper neighborhood size;
    /// * `self_score` — `Some(f(u))` when the query includes self.
    ///
    /// The empty average (no neighborhood, self excluded) is defined
    /// as 0, as is the empty maximum (scores are non-negative).
    #[inline]
    pub fn finalize(self, mass: f64, n: usize, self_score: Option<f64>) -> f64 {
        match self {
            Aggregate::Sum | Aggregate::DistanceWeightedSum => mass + self_score.unwrap_or(0.0),
            Aggregate::Avg => {
                let numerator = mass + self_score.unwrap_or(0.0);
                let denom = n + usize::from(self_score.is_some());
                if denom == 0 {
                    0.0
                } else {
                    numerator / denom as f64
                }
            }
            Aggregate::Max => mass.max(self_score.unwrap_or(0.0)).max(0.0),
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Aggregate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sum" => Ok(Aggregate::Sum),
            "avg" | "average" => Ok(Aggregate::Avg),
            "dwsum" | "weighted" => Ok(Aggregate::DistanceWeightedSum),
            "max" => Ok(Aggregate::Max),
            other => Err(format!("unknown aggregate `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds_self_when_included() {
        assert_eq!(Aggregate::Sum.finalize(2.0, 4, Some(0.5)), 2.5);
        assert_eq!(Aggregate::Sum.finalize(2.0, 4, None), 2.0);
    }

    #[test]
    fn avg_divides_by_inclusive_count() {
        assert_eq!(Aggregate::Avg.finalize(2.0, 3, Some(1.0)), 0.75); // (2+1)/4
        assert_eq!(Aggregate::Avg.finalize(2.0, 4, None), 0.5);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(Aggregate::Avg.finalize(0.0, 0, None), 0.0);
        // Self-only average is just the self score.
        assert_eq!(Aggregate::Avg.finalize(0.0, 0, Some(0.8)), 0.8);
    }

    #[test]
    fn weighted_behaves_like_sum_at_finalize() {
        assert_eq!(
            Aggregate::DistanceWeightedSum.finalize(1.5, 9, Some(0.5)),
            2.0
        );
    }

    #[test]
    fn parsing() {
        assert_eq!("sum".parse::<Aggregate>().unwrap(), Aggregate::Sum);
        assert_eq!("AVG".parse::<Aggregate>().unwrap(), Aggregate::Avg);
        assert!("median".parse::<Aggregate>().is_err());
    }

    #[test]
    fn needs_size_only_for_avg() {
        assert!(Aggregate::Avg.needs_size());
        assert!(!Aggregate::Sum.needs_size());
        assert!(!Aggregate::DistanceWeightedSum.needs_size());
    }
}
