//! Property tests for the sharded scatter-gather engine: on random
//! graphs × scores × queries, `ShardedEngine::run` must agree with a
//! single `LonaEngine` for **every** partition strategy and shard
//! count in {1, 2, 4, 8} — exactly (entries, bit-for-bit) when the
//! per-shard algorithm is forced to an order-preserving one, and to
//! 1e-9 on values when the per-shard planner chooses freely.

use proptest::prelude::*;

use lona_core::{Aggregate, Algorithm, LonaEngine, ShardOptions, ShardedEngine, TopKQuery};
use lona_graph::{partition, CsrGraph, GraphBuilder, PartitionStrategy};
use lona_relevance::ScoreVec;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    sparse: ScoreVec,
    dense: ScoreVec,
    h: u32,
    k: usize,
    include_self: bool,
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (4u32..40, 0usize..110)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                proptest::collection::vec(0.01f64..=1.0, n as usize),
                1u32..4,
                1usize..12,
                proptest::bool::ANY,
            )
        })
        .prop_map(|(n, edges, sparse, dense, h, k, include_self)| {
            let sparse: Vec<f64> = sparse
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                sparse: ScoreVec::new(sparse),
                dense: ScoreVec::new(dense),
                h,
                k,
                include_self,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Planner-chosen sharded runs agree with the single engine on
    /// values (1e-9) for every strategy × shard count × aggregate.
    #[test]
    fn sharded_planner_matches_single_engine(case in arb_case(), aggregate in arb_aggregate()) {
        let query = TopKQuery::new(case.k, aggregate).include_self(case.include_self);
        for scores in [&case.sparse, &case.dense] {
            let mut single = LonaEngine::new(&case.g, case.h);
            let expect = single.run(&Algorithm::Base, &query, scores);
            for strategy in PartitionStrategy::ALL {
                for &shards in &SHARD_COUNTS {
                    let sharded = partition(&case.g, shards, strategy, case.h).unwrap();
                    let mut engine = ShardedEngine::new(&sharded, case.h);
                    let got = engine.run(&query, scores, &ShardOptions::default());
                    prop_assert!(
                        got.result.same_values(&expect, 1e-9),
                        "{} x{} {:?} h={} k={}: {:?} vs {:?}",
                        strategy, shards, aggregate, case.h, case.k,
                        got.result.values(), expect.values()
                    );
                }
            }
        }
    }

    /// Forced order-preserving algorithms are bit-identical end to
    /// end: same nodes, same values, no tolerance.
    #[test]
    fn sharded_forced_runs_are_bit_identical(case in arb_case()) {
        for force in [Algorithm::Base, Algorithm::BackwardNaive, Algorithm::forward()] {
            for aggregate in [Aggregate::Sum, Aggregate::Max] {
                let query = TopKQuery::new(case.k, aggregate).include_self(case.include_self);
                let mut single = LonaEngine::new(&case.g, case.h);
                let expect = single.run(&force, &query, &case.dense);
                for strategy in PartitionStrategy::ALL {
                    for &shards in &SHARD_COUNTS {
                        let sharded = partition(&case.g, shards, strategy, case.h).unwrap();
                        let mut engine = ShardedEngine::new(&sharded, case.h);
                        let opts = ShardOptions::default().force(force);
                        let got = engine.run(&query, &case.dense, &opts);
                        prop_assert_eq!(
                            &got.result.entries,
                            &expect.entries,
                            "{} x{} {} {:?} h={} k={} diverged",
                            strategy, shards, force, aggregate, case.h, case.k
                        );
                    }
                }
            }
        }
    }

    /// A deeper halo than the query radius never changes the answer
    /// (exactness only requires halo >= hops).
    #[test]
    fn deeper_halo_is_harmless(case in arb_case()) {
        let query = TopKQuery::new(case.k, Aggregate::Sum).include_self(case.include_self);
        let exact = partition(&case.g, 4, PartitionStrategy::Contiguous, case.h).unwrap();
        let deep = partition(&case.g, 4, PartitionStrategy::Contiguous, case.h + 2).unwrap();
        let a = ShardedEngine::new(&exact, case.h)
            .run(&query, &case.sparse, &ShardOptions::default());
        let b = ShardedEngine::new(&deep, case.h)
            .run(&query, &case.sparse, &ShardOptions::default());
        prop_assert_eq!(a.result.entries, b.result.entries);
    }

    /// The partition itself is lossless: every node owned exactly
    /// once, every round-trip exact, and owned neighborhoods complete.
    #[test]
    fn partition_round_trips(case in arb_case(), shards in 1usize..9) {
        for strategy in PartitionStrategy::ALL {
            let sharded = partition(&case.g, shards, strategy, case.h).unwrap();
            let mut owned_total = 0usize;
            for shard in sharded.shards() {
                owned_total += shard.owned_count();
            }
            prop_assert_eq!(owned_total, case.g.num_nodes());
            for u in case.g.nodes() {
                let loc = sharded.locate(u);
                prop_assert_eq!(sharded.shard(loc.shard).to_global(loc.local), u);
                prop_assert!(sharded.shard(loc.shard).is_owned(loc.local));
            }
        }
    }
}
