//! Property tests for the compiled container: compile→load→query is
//! bit-identical to the in-RAM path on random graphs, and hostile
//! bytes — truncations, corrupted headers, flipped payload bits,
//! misaligned section lengths, arbitrary mutations — are rejected
//! with an error (or, for bytes outside any checksummed region,
//! loaded to the same answers), never a panic or an over-read.

use proptest::prelude::*;

use lona_core::{
    compile_to_vec, Aggregate, Algorithm, CompileSpec, CompiledGraph, LonaEngine, TopKQuery,
};
use lona_graph::{CsrGraph, GraphBuilder, GraphStore, NodeOrder};
use lona_relevance::ScoreVec;

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: ScoreVec,
    h: u32,
    k: usize,
    aggregate: Aggregate,
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

/// Random undirected graphs — the regime where every index (size and
/// differential) exists, so the compiled file carries them all.
fn arb_case() -> impl Strategy<Value = Case> {
    (3u32..24, 0usize..60)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                1u32..4,
                1usize..8,
                arb_aggregate(),
            )
        })
        .prop_map(|(n, edges, scores, h, k, aggregate)| {
            let scores: Vec<f64> = scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                scores: ScoreVec::new(scores),
                h,
                k,
                aggregate,
            }
        })
}

/// FNV-1a 64 — mirrors the container's section checksum so tests can
/// forge a valid checksum over corrupted bytes and force the loader's
/// *structural* validation (not the integrity check) to stand alone.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Overwrite one u32 in the payload of the first section of `kind`
/// (1 = Meta, 2 = Offsets, 3 = Targets, …) and re-forge the section
/// checksum. Returns false if the container has no such section or
/// its payload is empty (a zero-edge graph's Targets section).
fn forge_u32(bytes: &mut [u8], kind: u32, elem: usize, val: u32) -> bool {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = 16 + 32 * i;
        if u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == kind {
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            if len < 4 {
                return false;
            }
            let at = off + (elem % (len / 4)) * 4;
            bytes[at..at + 4].copy_from_slice(&val.to_le_bytes());
            let sum = fnv1a(&bytes[off..off + len]);
            bytes[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
            return true;
        }
    }
    false
}

fn compile_case(case: &Case) -> Vec<u8> {
    compile_to_vec(&CompileSpec {
        graph: case.g.view(),
        scores: Some(&case.scores),
        hops: &[case.h],
        with_diff: true,
        order: NodeOrder::Natural,
    })
    .unwrap()
}

/// Top-k entries as bit patterns, so -0.0/0.0 and every rounding
/// artifact must agree exactly — not just within a tolerance.
fn run_bits(
    engine: &mut LonaEngine<'_>,
    alg: &Algorithm,
    case: &Case,
    scores: &ScoreVec,
) -> Vec<(u32, u64)> {
    let query = TopKQuery::new(case.k, case.aggregate);
    let result = engine.run(alg, &query, scores);
    result
        .entries
        .iter()
        .map(|&(u, v)| (u.0, v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// compile → from_bytes → query answers bit-identically to the
    /// in-RAM graph under every sequential algorithm, and the mapped
    /// engine performs zero index builds.
    #[test]
    fn compiled_queries_are_bit_identical(case in arb_case()) {
        let bytes = compile_case(&case);
        let c = CompiledGraph::from_bytes(bytes).unwrap();
        prop_assert_eq!(c.scores().unwrap().as_slice(), case.scores.as_slice());

        let mut ram = LonaEngine::new(&case.g, case.h);
        let state = c.engine_state(case.h).expect("packed radius");
        let mut mapped = LonaEngine::from_state(&c, case.h, state);

        for alg in [Algorithm::Base, Algorithm::forward(), Algorithm::backward()] {
            let want = run_bits(&mut ram, &alg, &case, &case.scores);
            let got = run_bits(&mut mapped, &alg, &case, c.scores().unwrap());
            prop_assert_eq!(&want, &got, "algorithm {:?} diverged", alg);
        }
        prop_assert_eq!(mapped.state().index_builds(), 0);
    }

    /// Every strict prefix of a compiled file is rejected with an
    /// error — never a panic, never a bogus accept.
    #[test]
    fn every_truncation_is_rejected(case in arb_case(), frac in 0.0f64..1.0) {
        let bytes = compile_case(&case);
        let cut = ((bytes.len() as f64) * frac) as usize; // < len
        prop_assert!(CompiledGraph::from_bytes(bytes[..cut].to_vec()).is_err());
    }

    /// Any change to the magic or version bytes fails the load.
    #[test]
    fn corrupted_magic_or_version_is_rejected(
        case in arb_case(),
        byte in 0usize..12,
        delta in 1u8..=255,
    ) {
        let mut bytes = compile_case(&case);
        bytes[byte] = bytes[byte].wrapping_add(delta);
        prop_assert!(CompiledGraph::from_bytes(bytes).is_err());
    }

    /// Flipping any bit inside a section payload trips that section's
    /// checksum. Payloads start right after the 32-byte-per-entry
    /// table; the last byte of the file that is *not* alignment
    /// padding is inside the final payload, so probe near both ends.
    #[test]
    fn flipped_payload_bits_are_rejected(case in arb_case(), bit in 0u8..8) {
        let mut bytes = compile_case(&case);
        // The Meta payload is the first section: 32 bytes at the first
        // 8-aligned offset past the table. Its checksum must catch a
        // single flipped bit.
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let meta_off = (16 + 32 * count).next_multiple_of(8);
        bytes[meta_off] ^= 1 << bit;
        prop_assert!(CompiledGraph::from_bytes(bytes).is_err());
    }

    /// Making any section's length odd (not a multiple of its element
    /// size) is rejected — the checksum re-scan over the shifted range
    /// fails first, and even a forged checksum would then hit the
    /// element-size check. Never a panic, never an unaligned view.
    #[test]
    fn misaligned_section_lengths_are_rejected(case in arb_case(), idx in 0usize..16) {
        let mut bytes = compile_case(&case);
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let entry = 16 + 32 * (idx % count);
        // byte_len lives at entry+16; +1 misaligns every kind (element
        // sizes are 4, 8 or the fixed 32-byte meta).
        let len = u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap());
        bytes[entry + 16..entry + 24].copy_from_slice(&(len + 1).to_le_bytes());
        prop_assert!(CompiledGraph::from_bytes(bytes).is_err());
    }

    /// Arbitrary single-byte mutations anywhere in the file never
    /// panic and never over-read: the loader either rejects the bytes
    /// or — when the mutation lands in unchecksummed alignment padding
    /// or reshapes the container into something still self-consistent
    /// — yields a graph it can query without fault.
    #[test]
    fn arbitrary_mutation_never_panics(
        case in arb_case(),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = compile_case(&case);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(delta);
        if let Ok(c) = CompiledGraph::from_bytes(bytes) {
            // Accepted: exercise the mapped views end to end.
            let view = c.csr();
            for u in view.nodes() {
                let _ = view.neighbors(u);
            }
            for h in c.hops_list() {
                let _ = c.engine_state(h);
            }
        }
    }

    /// Structural corruption with a *forged* checksum — an arbitrary
    /// u32 planted anywhere in the Offsets, Targets, or Meta payload —
    /// never panics and never over-reads: the structural validation
    /// passes must stand on their own once the integrity check is
    /// sidestepped. Covers the non-monotone / out-of-range interior
    /// offset shape (e.g. [0, 10, 2] over 2 targets) that slipped past
    /// the pairwise monotone check and panicked the row slice.
    #[test]
    fn forged_checksum_corruption_never_panics(
        case in arb_case(),
        kind in prop_oneof![Just(1u32), Just(2), Just(3)],
        elem in 0usize..64,
        val in 0u32..u32::MAX,
    ) {
        let mut bytes = compile_case(&case);
        if !forge_u32(&mut bytes, kind, elem, val) {
            return Ok(()); // zero-edge graph: no Targets payload to forge
        }
        if let Ok(c) = CompiledGraph::from_bytes(bytes) {
            // Accepted means the planted value happened to keep every
            // invariant — exercise the views to prove it.
            let view = c.csr();
            for u in view.nodes() {
                let _ = view.neighbors(u);
            }
            for h in c.hops_list() {
                let _ = c.engine_state(h);
            }
        }
    }

    /// The specific reported repro, scaled to random graphs: bound an
    /// interior offset past the adjacency length while leaving the
    /// final offset intact, forge the checksum — must reject with an
    /// error, never panic.
    #[test]
    fn forged_oversized_offset_is_rejected(case in arb_case(), elem in 0usize..64) {
        let mut bytes = compile_case(&case);
        // An offset past the adjacency length fails whichever slot it
        // lands on: slot 0 breaks offsets[0] == 0, the final slot
        // breaks the adjacency-length match, and an interior slot must
        // trip the bound check *before* any row slice is formed.
        let oversized = case.g.view().num_adjacency_entries() as u32 + 7;
        if !forge_u32(&mut bytes, 2, elem, oversized) {
            return Ok(());
        }
        prop_assert!(
            CompiledGraph::from_bytes(bytes).is_err(),
            "oversized offset accepted"
        );
    }

    /// Zero-length and junk buffers of any size are rejected cleanly.
    #[test]
    fn junk_buffers_are_rejected(junk in proptest::collection::vec(0u8..=255, 0..256)) {
        // All-random bytes essentially never form a valid magic; if
        // they do start with it, the rest still has to validate.
        if junk.len() < 16 || &junk[..8] != lona_core::compiled::MAGIC {
            prop_assert!(CompiledGraph::from_bytes(junk).is_err());
        }
    }
}
