//! Property tests: every algorithm agrees with the brute-force oracle
//! on random graphs, scores, hop radii, aggregates and k.

use proptest::prelude::*;

use lona_core::validate::brute_force_topk;
use lona_core::{
    Aggregate, Algorithm, BackwardOptions, ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder,
    TopKQuery,
};
use lona_graph::{CsrGraph, GraphBuilder};
use lona_relevance::ScoreVec;

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: ScoreVec,
    h: u32,
    k: usize,
    aggregate: Aggregate,
    include_self: bool,
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (3u32..24, 0usize..60)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                1u32..4,
                1usize..8,
                arb_aggregate(),
                proptest::bool::ANY,
            )
        })
        .prop_map(|(n, edges, scores, h, k, aggregate, include_self)| {
            // Sparsify scores: graph queries with mostly-zero scores are
            // the paper's regime, so zero out two thirds.
            let scores: Vec<f64> = scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                scores: ScoreVec::new(scores),
                h,
                k,
                aggregate,
                include_self,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Base, LONA-Forward (all orders), BackwardNaive and
    /// LONA-Backward (several γ) all return the oracle's value
    /// sequence.
    #[test]
    fn all_algorithms_match_oracle(case in arb_case()) {
        let query = TopKQuery::new(case.k, case.aggregate).include_self(case.include_self);
        let expect = brute_force_topk(&case.g, &case.scores, case.h, &query);
        let mut engine = LonaEngine::new(&case.g, case.h);

        let algorithms = [
            Algorithm::Base,
            Algorithm::LonaForward(ForwardOptions { order: ProcessingOrder::NodeId }),
            Algorithm::LonaForward(ForwardOptions { order: ProcessingOrder::DegreeDescending }),
            Algorithm::LonaForward(ForwardOptions { order: ProcessingOrder::ScoreDescending }),
            Algorithm::BackwardNaive,
            Algorithm::LonaBackward(BackwardOptions { gamma: GammaSpec::Fixed(0.0) }),
            Algorithm::LonaBackward(BackwardOptions { gamma: GammaSpec::Fixed(0.3) }),
            Algorithm::LonaBackward(BackwardOptions { gamma: GammaSpec::NonzeroQuantile(0.9) }),
            Algorithm::LonaBackward(BackwardOptions { gamma: GammaSpec::NonzeroQuantile(0.5) }),
        ];
        for alg in algorithms {
            let got = engine.run(&alg, &query, &case.scores);
            prop_assert!(
                got.same_values(&expect, 1e-9),
                "{alg} disagrees: got {:?}, expected {:?} (h={}, k={}, {:?}, self={})",
                got.values(),
                expect.values(),
                case.h,
                case.k,
                case.aggregate,
                case.include_self,
            );
        }
    }

    /// The pruned forward algorithm never evaluates more nodes than
    /// Base, and its evaluated + pruned counts cover the graph.
    #[test]
    fn forward_work_accounting(case in arb_case()) {
        let query = TopKQuery::new(case.k, case.aggregate).include_self(case.include_self);
        let mut engine = LonaEngine::new(&case.g, case.h);
        let base = engine.run(&Algorithm::Base, &query, &case.scores);
        let fwd = engine.run(&Algorithm::forward(), &query, &case.scores);
        prop_assert_eq!(base.stats.nodes_evaluated, case.g.num_nodes());
        prop_assert!(fwd.stats.nodes_evaluated <= base.stats.nodes_evaluated);
        prop_assert_eq!(
            fwd.stats.nodes_evaluated + fwd.stats.nodes_pruned,
            case.g.num_nodes()
        );
    }

    /// Binary relevance: LONA-Backward must answer without a single
    /// exact forward expansion (the paper's skip-zero fast path).
    #[test]
    fn backward_binary_never_expands(
        n in 4u32..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
        ones in proptest::collection::vec(0u32..30, 1..6),
        k in 1usize..5,
    ) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = GraphBuilder::undirected().with_num_nodes(n).extend_edges(edges).build().unwrap();
        let mut scores = vec![0.0; n as usize];
        for o in ones {
            scores[(o % n) as usize] = 1.0;
        }
        let scores = ScoreVec::new(scores);
        let query = TopKQuery::new(k, Aggregate::Sum);
        let mut engine = LonaEngine::new(&g, 2);
        let res = engine.run(&Algorithm::backward(), &query, &scores);
        prop_assert_eq!(res.stats.nodes_evaluated, 0);
        // And it still matches the oracle.
        let expect = brute_force_topk(&g, &scores, 2, &query);
        prop_assert!(res.same_values(&expect, 1e-9));
    }
}
