//! Property tests for the serve wire format: encode→decode identity
//! for arbitrary requests and replies (bit-exact, including hostile
//! f64 payloads) across **both protocol versions**, plus rejection —
//! not panic — for every truncation, oversized frame, and corrupted
//! header byte. The v1↔v2 cross-version properties pin the compat
//! contract: v1 frames from PR-5-era clients must decode forever.

use proptest::prelude::*;

use lona_core::serve::codec::{
    decode_reply, decode_request, decode_stats_reply, encode_reply, encode_reply_v2,
    encode_request, encode_request_v2, encode_stats_reply, encode_stats_request, read_frame,
    write_frame, MAX_FRAME,
};
use lona_core::serve::{ErrorCode, Reply, Request, Response, ScoreRef, ServeStats, StatsReport};
use lona_core::Aggregate;

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

/// The vendored shim has no regex string strategy; build printable
/// ASCII (plus UTF-8 snowmen, to exercise multi-byte paths) by hand.
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..max).prop_map(|bytes| {
        let mut m = String::from_utf8(bytes).expect("printable ascii");
        if m.len().is_multiple_of(3) {
            m.push('\u{2603}');
        }
        m
    })
}

/// A v1-expressible relevance reference: an inline source set.
fn arb_sources() -> impl Strategy<Value = ScoreRef> {
    proptest::collection::vec(0u32..1_000_000, 0..40).prop_map(ScoreRef::Sources)
}

/// Any relevance reference, including v2-only named functions.
fn arb_scores() -> impl Strategy<Value = ScoreRef> {
    prop_oneof![arb_sources(), arb_text(30).prop_map(ScoreRef::Named),]
}

fn request_with(scores: impl Strategy<Value = ScoreRef>) -> impl Strategy<Value = Request> {
    (
        0u64..u64::MAX,
        scores,
        0usize..100_000,
        0u32..64,
        arb_aggregate(),
        proptest::bool::ANY,
    )
        .prop_map(|(id, scores, k, hops, aggregate, include_self)| Request {
            id,
            scores,
            k,
            hops,
            aggregate,
            include_self,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    request_with(arb_scores())
}

fn arb_request_v1() -> impl Strategy<Value = Request> {
    request_with(arb_sources())
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u64..u64::MAX,
        // Raw bit patterns, so NaNs (any payload), ±inf, -0.0 and
        // subnormals all cross the wire; identity is over to_bits.
        proptest::collection::vec((0u32..1_000_000, 0u64..u64::MAX), 0..30),
        proptest::collection::vec(0u64..u64::MAX, 10),
    )
        .prop_map(|(id, raw_entries, s)| Response {
            id,
            entries: raw_entries
                .into_iter()
                .map(|(n, bits)| (n, f64::from_bits(bits)))
                .collect(),
            stats: ServeStats {
                nodes_evaluated: s[0],
                nodes_pruned: s[1],
                edges_traversed: s[2],
                nodes_distributed: s[3],
                exact_from_bound: s[4],
                index_build_nanos: s[5],
                runtime_nanos: s[6],
                queue_nanos: s[7],
                serve_nanos: s[8],
                batch_size: (s[9] % u32::MAX as u64) as u32,
            },
        })
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Busy),
        Just(ErrorCode::Unsupported),
        Just(ErrorCode::Internal),
    ]
}

/// Any reply, including v2-only error structure (non-default code,
/// retry hints); full fidelity needs a v2 frame.
fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        arb_response().prop_map(Reply::Ok),
        (
            arb_text(60),
            0u64..u64::MAX,
            arb_error_code(),
            0u64..u64::MAX
        )
            .prop_map(|(message, id, code, retry_after_micros)| Reply::Err {
                id,
                code,
                retry_after_micros,
                message,
            }),
    ]
}

/// A reply a v1 frame can carry losslessly: v1 error frames have no
/// code/retry fields, and decode as `BadRequest` with no hint.
fn arb_reply_v1() -> impl Strategy<Value = Reply> {
    prop_oneof![
        arb_response().prop_map(Reply::Ok),
        (arb_text(60), 0u64..u64::MAX).prop_map(|(message, id)| Reply::Err {
            id,
            code: ErrorCode::BadRequest,
            retry_after_micros: 0,
            message,
        }),
    ]
}

fn arb_stats_report() -> impl Strategy<Value = StatsReport> {
    (
        proptest::collection::vec(0u64..u64::MAX, 9),
        proptest::collection::vec(proptest::collection::vec(0u64..u64::MAX, 0..44), 4),
    )
        .prop_map(|(c, h)| StatsReport {
            connections: c[0],
            conn_rejected: c[1],
            admitted: c[2],
            shed: c[3],
            error_replies: c[4],
            rejected_frames: c[5],
            timeouts: c[6],
            index_builds: c[7],
            queue_depth: c[8],
            queue_wait: h[0].clone(),
            dispatch: h[1].clone(),
            end_to_end: h[2].clone(),
            batch_size: h[3].clone(),
        })
}

/// Bit-exact equality for replies: `PartialEq` on f64 conflates
/// -0.0/0.0 and rejects NaN == NaN, but the wire contract is the bit
/// pattern.
fn reply_bits_equal(a: &Reply, b: &Reply) -> bool {
    match (a, b) {
        (Reply::Ok(x), Reply::Ok(y)) => {
            x.id == y.id
                && x.stats == y.stats
                && x.entries.len() == y.entries.len()
                && x.entries
                    .iter()
                    .zip(&y.entries)
                    .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
        }
        (
            Reply::Err {
                id: a_id,
                code: a_code,
                retry_after_micros: a_retry,
                message: a_msg,
            },
            Reply::Err {
                id: b_id,
                code: b_code,
                retry_after_micros: b_retry,
                message: b_msg,
            },
        ) => a_id == b_id && a_code == b_code && a_retry == b_retry && a_msg == b_msg,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode→decode is the identity on requests. `encode_request`
    /// picks the wire version itself (v1 for inline sources, v2 for
    /// named references); both must land back on the same value.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req);
    }

    /// Cross-version: any v1-expressible request also round-trips
    /// through an explicit v2 frame — same decoded value, so a
    /// client may upgrade frame versions without answers moving.
    #[test]
    fn v1_requests_survive_v2_framing(req in arb_request_v1()) {
        let v1 = encode_request(&req);
        let v2 = encode_request_v2(&req);
        prop_assert_ne!(&v1, &v2, "the frames differ on the wire");
        prop_assert_eq!(decode_request(&v1).unwrap(), decode_request(&v2).unwrap());
    }

    /// encode→decode is the identity on replies through a v2 frame,
    /// bit-exact on every f64 — including NaN payloads, ±inf, -0.0
    /// and subnormals — and exact on code/retry structure.
    #[test]
    fn reply_round_trips_bit_exactly(reply in arb_reply()) {
        let payload = encode_reply_v2(&reply);
        let back = decode_reply(&payload).unwrap();
        prop_assert!(reply_bits_equal(&reply, &back), "{:?} vs {:?}", reply, back);
    }

    /// v1 reply frames (what a PR-5-era server emitted) still decode,
    /// losslessly for everything v1 could express.
    #[test]
    fn v1_replies_still_decode(reply in arb_reply_v1()) {
        let payload = encode_reply(&reply);
        let back = decode_reply(&payload).unwrap();
        prop_assert!(reply_bits_equal(&reply, &back), "{:?} vs {:?}", reply, back);
    }

    /// Stats frames round-trip: the poll request and the full report
    /// (counters plus all four histograms).
    #[test]
    fn stats_reply_round_trips(id in 0u64..u64::MAX, report in arb_stats_report()) {
        let payload = encode_stats_reply(id, &report);
        prop_assert_eq!(decode_stats_reply(&payload).unwrap(), (id, report));
    }

    /// Every strict prefix of a valid payload is rejected with an
    /// error — never a panic, never a bogus accept.
    #[test]
    fn truncated_requests_are_rejected(req in arb_request(), frac in 0.0f64..1.0) {
        let payload = encode_request(&req);
        let cut = ((payload.len() as f64) * frac) as usize; // < len
        prop_assert!(decode_request(&payload[..cut]).is_err());
        prop_assert!(decode_reply(&payload[..cut]).is_err());
    }

    /// Same for replies, in both frame versions.
    #[test]
    fn truncated_replies_are_rejected(reply in arb_reply(), frac in 0.0f64..1.0) {
        for payload in [encode_reply(&reply), encode_reply_v2(&reply)] {
            let cut = ((payload.len() as f64) * frac) as usize;
            prop_assert!(decode_reply(&payload[..cut]).is_err());
        }
    }

    /// Same for the new (v2) frame kinds: every strict prefix of a
    /// stats request or stats reply is rejected.
    #[test]
    fn truncated_stats_frames_are_rejected(
        id in 0u64..u64::MAX,
        report in arb_stats_report(),
        frac in 0.0f64..1.0,
    ) {
        let poll = encode_stats_request(id);
        let cut = ((poll.len() as f64) * frac) as usize;
        prop_assert!(lona_core::serve::codec::decode_inbound(&poll[..cut]).is_err());

        let payload = encode_stats_reply(id, &report);
        let cut = ((payload.len() as f64) * frac) as usize;
        prop_assert!(decode_stats_reply(&payload[..cut]).is_err());
    }

    /// Trailing garbage after a complete message is rejected.
    #[test]
    fn trailing_bytes_are_rejected(req in arb_request(), extra in 1usize..16) {
        let mut payload = encode_request(&req);
        payload.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Corrupting any single header byte to an invalid value fails
    /// the decode — across both frame versions.
    #[test]
    fn corrupted_headers_are_rejected(req in arb_request(), byte in 0usize..3) {
        let mut payload = encode_request(&req);
        payload[byte] = payload[byte].wrapping_add(100);
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Framing: a frame round-trips through a byte pipe, and a length
    /// prefix above the cap is rejected before any allocation.
    #[test]
    fn frames_round_trip_and_oversize_is_rejected(req in arb_request(), over in 1u64..1_000) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        let mut cursor = &wire[..];
        prop_assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none(), "clean EOF");

        // An oversized length prefix (cap + over) must fail fast.
        let hostile_len = (MAX_FRAME as u64 + over) as u32;
        let mut hostile = hostile_len.to_le_bytes().to_vec();
        hostile.extend_from_slice(&payload);
        let err = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
