//! Property tests for the serve wire format: encode→decode identity
//! for arbitrary requests and replies (bit-exact, including hostile
//! f64 payloads), plus rejection — not panic — for every truncation,
//! oversized frame, and corrupted header byte.

use proptest::prelude::*;

use lona_core::serve::codec::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame, MAX_FRAME,
};
use lona_core::serve::{Reply, Request, Response, ServeStats};
use lona_core::Aggregate;

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..u64::MAX,
        proptest::collection::vec(0u32..1_000_000, 0..40),
        0usize..100_000,
        0u32..64,
        arb_aggregate(),
        proptest::bool::ANY,
    )
        .prop_map(|(id, sources, k, hops, aggregate, include_self)| Request {
            id,
            sources,
            k,
            hops,
            aggregate,
            include_self,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u64..u64::MAX,
        // Raw bit patterns, so NaNs (any payload), ±inf, -0.0 and
        // subnormals all cross the wire; identity is over to_bits.
        proptest::collection::vec((0u32..1_000_000, 0u64..u64::MAX), 0..30),
        proptest::collection::vec(0u64..u64::MAX, 10),
    )
        .prop_map(|(id, raw_entries, s)| Response {
            id,
            entries: raw_entries
                .into_iter()
                .map(|(n, bits)| (n, f64::from_bits(bits)))
                .collect(),
            stats: ServeStats {
                nodes_evaluated: s[0],
                nodes_pruned: s[1],
                edges_traversed: s[2],
                nodes_distributed: s[3],
                exact_from_bound: s[4],
                index_build_nanos: s[5],
                runtime_nanos: s[6],
                queue_nanos: s[7],
                serve_nanos: s[8],
                batch_size: (s[9] % u32::MAX as u64) as u32,
            },
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    // The vendored shim has no regex string strategy; build printable
    // ASCII (plus UTF-8 snowmen, to exercise multi-byte paths) by hand.
    let arb_message = proptest::collection::vec(32u8..127, 0..60).prop_map(|bytes| {
        let mut m = String::from_utf8(bytes).expect("printable ascii");
        if m.len().is_multiple_of(3) {
            m.push('\u{2603}');
        }
        m
    });
    prop_oneof![
        arb_response().prop_map(Reply::Ok),
        (arb_message, 0u64..u64::MAX).prop_map(|(message, id)| Reply::Err { id, message }),
    ]
}

/// Bit-exact equality for replies: `PartialEq` on f64 conflates
/// -0.0/0.0 and rejects NaN == NaN, but the wire contract is the bit
/// pattern.
fn reply_bits_equal(a: &Reply, b: &Reply) -> bool {
    match (a, b) {
        (Reply::Ok(x), Reply::Ok(y)) => {
            x.id == y.id
                && x.stats == y.stats
                && x.entries.len() == y.entries.len()
                && x.entries
                    .iter()
                    .zip(&y.entries)
                    .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
        }
        (
            Reply::Err {
                id: a_id,
                message: a_msg,
            },
            Reply::Err {
                id: b_id,
                message: b_msg,
            },
        ) => a_id == b_id && a_msg == b_msg,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode→decode is the identity on requests.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req);
    }

    /// encode→decode is the identity on replies, bit-exact on every
    /// f64 — including NaN payloads, ±inf, -0.0 and subnormals.
    #[test]
    fn reply_round_trips_bit_exactly(reply in arb_reply()) {
        let payload = encode_reply(&reply);
        let back = decode_reply(&payload).unwrap();
        prop_assert!(reply_bits_equal(&reply, &back), "{:?} vs {:?}", reply, back);
    }

    /// Every strict prefix of a valid payload is rejected with an
    /// error — never a panic, never a bogus accept.
    #[test]
    fn truncated_requests_are_rejected(req in arb_request(), frac in 0.0f64..1.0) {
        let payload = encode_request(&req);
        let cut = ((payload.len() as f64) * frac) as usize; // < len
        prop_assert!(decode_request(&payload[..cut]).is_err());
        prop_assert!(decode_reply(&payload[..cut]).is_err());
    }

    /// Same for replies.
    #[test]
    fn truncated_replies_are_rejected(reply in arb_reply(), frac in 0.0f64..1.0) {
        let payload = encode_reply(&reply);
        let cut = ((payload.len() as f64) * frac) as usize;
        prop_assert!(decode_reply(&payload[..cut]).is_err());
    }

    /// Trailing garbage after a complete message is rejected.
    #[test]
    fn trailing_bytes_are_rejected(req in arb_request(), extra in 1usize..16) {
        let mut payload = encode_request(&req);
        payload.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Corrupting any single header byte to an invalid value fails
    /// the decode.
    #[test]
    fn corrupted_headers_are_rejected(req in arb_request(), byte in 0usize..3) {
        let mut payload = encode_request(&req);
        payload[byte] = payload[byte].wrapping_add(100);
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Framing: a frame round-trips through a byte pipe, and a length
    /// prefix above the cap is rejected before any allocation.
    #[test]
    fn frames_round_trip_and_oversize_is_rejected(req in arb_request(), over in 1u64..1_000) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        let mut cursor = &wire[..];
        prop_assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none(), "clean EOF");

        // An oversized length prefix (cap + over) must fail fast.
        let hostile_len = (MAX_FRAME as u64 + over) as u32;
        let mut hostile = hostile_len.to_le_bytes().to_vec();
        hostile.extend_from_slice(&payload);
        let err = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
