//! Property tests for the parallel execution paths: every parallel
//! algorithm agrees with its serial counterpart across random graphs,
//! scores, aggregates, γ policies, and thread counts {1, 2, 3, 7}.

use proptest::prelude::*;

use lona_core::{
    Aggregate, Algorithm, BackwardOptions, ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder,
    TopKQuery,
};
use lona_graph::{CsrGraph, GraphBuilder};
use lona_relevance::ScoreVec;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 7];

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: ScoreVec,
    h: u32,
    k: usize,
    aggregate: Aggregate,
    include_self: bool,
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (4u32..40, 0usize..120)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                1u32..4,
                1usize..10,
                arb_aggregate(),
                proptest::bool::ANY,
            )
        })
        .prop_map(|(n, edges, scores, h, k, aggregate, include_self)| {
            // Mostly-zero scores: the paper's sparse-relevance regime.
            let scores: Vec<f64> = scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                scores: ScoreVec::new(scores),
                h,
                k,
                aggregate,
                include_self,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ParallelForward matches serial LONA-Forward for every
    /// processing order and thread count.
    #[test]
    fn parallel_forward_matches_serial(case in arb_case()) {
        let query = TopKQuery::new(case.k, case.aggregate).include_self(case.include_self);
        let mut engine = LonaEngine::new(&case.g, case.h);
        for order in [
            ProcessingOrder::NodeId,
            ProcessingOrder::DegreeDescending,
            ProcessingOrder::ScoreDescending,
        ] {
            let opts = ForwardOptions { order };
            let serial = engine.run(&Algorithm::LonaForward(opts), &query, &case.scores);
            for threads in THREAD_COUNTS {
                let parallel = engine.run(
                    &Algorithm::ParallelForward { opts, threads },
                    &query,
                    &case.scores,
                );
                prop_assert!(
                    parallel.same_values(&serial, 1e-9),
                    "forward t={threads} {order:?} h={} k={} {:?}: {:?} vs {:?}",
                    case.h,
                    case.k,
                    case.aggregate,
                    parallel.values(),
                    serial.values()
                );
                // Pruning races only ever evaluate MORE nodes than
                // serial, never fewer prunes than zero; the state
                // machine still accounts for every node.
                prop_assert_eq!(
                    parallel.stats.nodes_evaluated + parallel.stats.nodes_pruned,
                    case.g.num_nodes()
                );
            }
        }
    }

    /// ParallelBackward matches serial LONA-Backward for several γ
    /// policies and every thread count.
    #[test]
    fn parallel_backward_matches_serial(case in arb_case()) {
        let query = TopKQuery::new(case.k, case.aggregate).include_self(case.include_self);
        let mut engine = LonaEngine::new(&case.g, case.h);
        for gamma in [
            GammaSpec::Fixed(0.0),
            GammaSpec::Fixed(0.3),
            GammaSpec::NonzeroQuantile(0.5),
            GammaSpec::Auto,
        ] {
            let opts = BackwardOptions { gamma };
            let serial = engine.run(&Algorithm::LonaBackward(opts), &query, &case.scores);
            for threads in THREAD_COUNTS {
                let parallel = engine.run(
                    &Algorithm::ParallelBackward { opts, threads },
                    &query,
                    &case.scores,
                );
                prop_assert!(
                    parallel.same_values(&serial, 1e-9),
                    "backward t={threads} {gamma:?} h={} k={} {:?}: {:?} vs {:?}",
                    case.h,
                    case.k,
                    case.aggregate,
                    parallel.values(),
                    serial.values()
                );
            }
        }
    }

    /// ParallelBase is bit-identical to Base (exact evaluation
    /// commutes) at every thread count.
    #[test]
    fn parallel_base_matches_serial(case in arb_case()) {
        let query = TopKQuery::new(case.k, case.aggregate).include_self(case.include_self);
        let mut engine = LonaEngine::new(&case.g, case.h);
        let serial = engine.run(&Algorithm::Base, &query, &case.scores);
        for threads in THREAD_COUNTS {
            let parallel = engine.run(&Algorithm::ParallelBase(threads), &query, &case.scores);
            prop_assert_eq!(parallel.nodes(), serial.nodes(), "t={}", threads);
            prop_assert_eq!(parallel.values(), serial.values(), "t={}", threads);
        }
    }
}
