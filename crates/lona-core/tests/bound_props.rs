//! Property tests: the pruning bounds of Equations 1–3 are true upper
//! bounds on random inputs.

use proptest::prelude::*;

use lona_core::bounds::{avg_from_sum_bound, backward_sum_bound, forward_sum_bound};
use lona_core::index::{DiffIndex, SizeIndex};
use lona_core::validate::brute_force_value;
use lona_core::{Aggregate, GammaSpec, TopKQuery};
use lona_graph::traversal::bfs_distances;
use lona_graph::{CsrGraph, GraphBuilder};
use lona_relevance::ScoreVec;

fn arb_graph_scores() -> impl Strategy<Value = (CsrGraph, ScoreVec)> {
    (3u32..20, 0usize..50)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
            )
        })
        .prop_map(|(n, edges, scores)| {
            (
                GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                ScoreVec::new(scores),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Eq. 1 / Eq. 2: the forward differential bound dominates the
    /// true aggregate of every neighbor, for SUM, AVG and the
    /// distance-weighted SUM, under both self-inclusion semantics.
    #[test]
    fn forward_bound_is_upper_bound(
        (g, scores) in arb_graph_scores(),
        h in 1u32..4,
        include_self in proptest::bool::ANY,
    ) {
        let sizes = SizeIndex::build(g.view(), h);
        let diffs = DiffIndex::build(g.view(), h, &sizes);
        for u in g.nodes() {
            let f_sum_u =
                brute_force_value(&g, &scores, h, u, Aggregate::Sum, include_self);
            for &v in g.neighbors(u) {
                let delta = diffs.delta(g.view(), u, v).unwrap();
                let n_v = sizes.get(v);
                let sum_bound =
                    forward_sum_bound(f_sum_u, delta, n_v, scores.get(v), include_self);

                let true_sum =
                    brute_force_value(&g, &scores, h, v, Aggregate::Sum, include_self);
                prop_assert!(
                    sum_bound >= true_sum - 1e-9,
                    "Eq.1 violated at ({u:?},{v:?}): bound {sum_bound} < true {true_sum}"
                );

                let avg_bound = avg_from_sum_bound(sum_bound, n_v, include_self);
                let true_avg =
                    brute_force_value(&g, &scores, h, v, Aggregate::Avg, include_self);
                prop_assert!(
                    avg_bound >= true_avg - 1e-9,
                    "Eq.2 violated at ({u:?},{v:?}): bound {avg_bound} < true {true_avg}"
                );

                let true_dw = brute_force_value(
                    &g, &scores, h, v, Aggregate::DistanceWeightedSum, include_self,
                );
                prop_assert!(
                    sum_bound >= true_dw - 1e-9,
                    "SUM bound must dominate weighted SUM at ({u:?},{v:?})"
                );
            }
        }
    }

    /// Eq. 3: the backward partial-distribution bound dominates the
    /// true SUM for every node and any γ.
    #[test]
    fn backward_bound_is_upper_bound(
        (g, scores) in arb_graph_scores(),
        h in 1u32..4,
        gamma in 0.0f64..1.0,
        include_self in proptest::bool::ANY,
    ) {
        let n = g.num_nodes();
        let sizes = SizeIndex::build(g.view(), h);

        // Simulate the distribution phase exactly as the algorithm does.
        let mut partial = vec![0.0f64; n];
        let mut received = vec![0u32; n];
        for u in g.nodes() {
            let f_u = scores.get(u);
            if f_u <= gamma {
                continue;
            }
            let dist = bfs_distances(&g, u);
            for v in 0..n as u32 {
                if v != u.0 && dist[v as usize] != u32::MAX && dist[v as usize] <= h {
                    partial[v as usize] += f_u;
                    received[v as usize] += 1;
                }
            }
        }

        for v in g.nodes() {
            let bound = backward_sum_bound(
                partial[v.index()],
                received[v.index()],
                sizes.get(v),
                gamma,
                scores.get(v),
                include_self,
            );
            let true_sum = brute_force_value(&g, &scores, h, v, Aggregate::Sum, include_self);
            prop_assert!(
                bound >= true_sum - 1e-9,
                "Eq.3 violated at {v:?} (γ={gamma}): bound {bound} < true {true_sum}"
            );
        }
    }

    /// The differential index always matches its set-difference
    /// definition, and is bounded by N(v).
    #[test]
    fn diff_index_definition(
        (g, _) in arb_graph_scores(),
        h in 1u32..4,
    ) {
        let sizes = SizeIndex::build(g.view(), h);
        let diffs = DiffIndex::build(g.view(), h, &sizes);
        for u in g.nodes() {
            let du = bfs_distances(&g, u);
            for &v in g.neighbors(u) {
                let dv = bfs_distances(&g, v);
                let expect = (0..g.num_nodes() as u32)
                    .filter(|&w| {
                        let in_sv = w != v.0 && dv[w as usize] <= h;
                        let in_su = w != u.0 && du[w as usize] <= h;
                        in_sv && !in_su
                    })
                    .count() as u32;
                let got = diffs.delta(g.view(), u, v).unwrap();
                prop_assert_eq!(got, expect, "delta({:?} - {:?})", v, u);
                prop_assert!(got as usize <= sizes.get(v));
            }
        }
    }

    /// γ resolution invariants: the resolved threshold is always
    /// non-negative and below the max nonzero score (or zero).
    #[test]
    fn gamma_resolution_invariants(
        scores in proptest::collection::vec(0.0f64..=1.0, 1..50),
        q in 0.0f64..=1.0,
    ) {
        let sv = ScoreVec::new(scores);
        let gamma = GammaSpec::NonzeroQuantile(q).resolve(&sv);
        prop_assert!(gamma >= 0.0);
        let max = sv.nonzero_quantile(1.0);
        prop_assert!(gamma < max || (gamma == 0.0 && max == 0.0),
            "gamma {gamma} vs max {max}");
    }
}

#[test]
fn query_construction_sanity() {
    let q = TopKQuery::new(5, Aggregate::Avg).include_self(false);
    assert_eq!(q.k, 5);
    assert!(!q.include_self);
}
