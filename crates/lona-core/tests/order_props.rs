//! Property tests for the cache-locality engine: on random graphs,
//! every algorithm run on a degree-/BFS-reordered copy must agree
//! with the natural-order engine (values within 1e-9 for SUM/AVG,
//! bit-identical for MAX), the Base scan's work counters must be
//! identical under every numbering, and the permutation itself must
//! round-trip losslessly.
//!
//! Only Base's counters are gated: a full scan's work is a function
//! of the graph, not the numbering. The pruned algorithms evaluate a
//! numbering-dependent node set (their bound orders break ties by
//! id), so they are value-gated only.

use proptest::prelude::*;

use lona_core::{
    Aggregate, Algorithm, BackwardOptions, ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder,
    ReorderedEngine, TopKQuery,
};
use lona_graph::order::Permutation;
use lona_graph::{CsrGraph, GraphBuilder, NodeId, NodeOrder};
use lona_relevance::ScoreVec;

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: ScoreVec,
    h: u32,
    k: usize,
}

/// Every serial algorithm family and processing order.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Base,
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::NodeId,
        }),
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::DegreeDescending,
        }),
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::ScoreDescending,
        }),
        Algorithm::BackwardNaive,
        Algorithm::LonaBackward(BackwardOptions {
            gamma: GammaSpec::Fixed(0.0),
        }),
        Algorithm::LonaBackward(BackwardOptions {
            gamma: GammaSpec::NonzeroQuantile(0.9),
        }),
    ]
}

fn arb_order() -> impl Strategy<Value = NodeOrder> {
    prop_oneof![Just(NodeOrder::Degree), Just(NodeOrder::Bfs)]
}

/// Random undirected graphs with a sparse score vector (the paper's
/// regime: most nodes irrelevant).
fn arb_case() -> impl Strategy<Value = Case> {
    (3u32..24, 0usize..60)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                1u32..4,
                1usize..8,
            )
        })
        .prop_map(|(n, edges, scores, h, k)| {
            let scores: Vec<f64> = scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                scores: ScoreVec::new(scores),
                h,
                k,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm × aggregate on a reordered copy agrees with
    /// the natural engine; Base's counters are numbering-invariant.
    #[test]
    fn reordered_matches_natural(case in arb_case(), order in arb_order()) {
        let mut natural = LonaEngine::new(&case.g, case.h);
        let mut eng = ReorderedEngine::new(&case.g, order, case.h);
        for aggregate in [Aggregate::Sum, Aggregate::Avg, Aggregate::Max] {
            let query = TopKQuery::new(case.k, aggregate);
            for algorithm in algorithms() {
                let n = natural.run(&algorithm, &query, &case.scores);
                let r = eng.run(&algorithm, &query, &case.scores);
                if aggregate == Aggregate::Max {
                    // MAX is computed by f64::max under every
                    // numbering — not even the last bit may move.
                    prop_assert_eq!(r.entries.len(), n.entries.len());
                    for (a, b) in r.entries.iter().zip(n.entries.iter()) {
                        prop_assert_eq!(
                            a.1.to_bits(), b.1.to_bits(),
                            "{} {:?} MAX diverged", order, algorithm
                        );
                    }
                } else {
                    prop_assert!(
                        r.same_values(&n, 1e-9),
                        "{} {:?} {:?} values diverged: {:?} vs {:?}",
                        order, algorithm, aggregate, r.entries, n.entries
                    );
                }
                if matches!(algorithm, Algorithm::Base) {
                    prop_assert_eq!(r.stats.edges_traversed, n.stats.edges_traversed);
                    prop_assert_eq!(r.stats.nodes_evaluated, n.stats.nodes_evaluated);
                }
            }
        }
    }

    /// Entries always come back in the original id space.
    #[test]
    fn entries_stay_in_original_id_space(case in arb_case(), order in arb_order()) {
        let n = case.g.num_nodes() as u32;
        let mut eng = ReorderedEngine::new(&case.g, order, case.h);
        let query = TopKQuery::new(case.k, Aggregate::Sum);
        let r = eng.run(&Algorithm::Base, &query, &case.scores);
        for &(u, _) in &r.entries {
            prop_assert!(u.0 < n);
        }
        // Canonical output order: descending value, ties by original id.
        for w in r.entries.windows(2) {
            prop_assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0.0 < w[1].0.0),
                "entries out of canonical order: {:?}", r.entries
            );
        }
    }

    /// The permutation is a lossless bijection: new↔old round-trips
    /// on every node, and serializing the new→old table rebuilds the
    /// same permutation (the compiled container's Perm section does
    /// exactly this).
    #[test]
    fn permutation_roundtrips(case in arb_case(), order in arb_order()) {
        let perm = order.compute(case.g.view());
        prop_assert_eq!(perm.len(), case.g.num_nodes());
        for u in 0..case.g.num_nodes() as u32 {
            prop_assert_eq!(perm.to_old(perm.to_new(NodeId(u))), NodeId(u));
            prop_assert_eq!(perm.to_new(perm.to_old(NodeId(u))), NodeId(u));
        }
        let rebuilt = Permutation::from_new_to_old(perm.new_to_old().to_vec()).unwrap();
        prop_assert_eq!(&rebuilt, &perm);
    }

    /// Renumbering is an isomorphism: same node/edge counts, and each
    /// node keeps its degree across the mapping.
    #[test]
    fn reorder_preserves_structure(case in arb_case(), order in arb_order()) {
        let (rg, perm) = case.g.reordered(order);
        prop_assert_eq!(rg.num_nodes(), case.g.num_nodes());
        prop_assert_eq!(rg.num_edges(), case.g.num_edges());
        for u in 0..case.g.num_nodes() as u32 {
            let old = case.g.view().neighbors(NodeId(u)).len();
            let new = rg.view().neighbors(perm.to_new(NodeId(u))).len();
            prop_assert_eq!(old, new, "node {} changed degree", u);
        }
    }
}
