//! Property tests for the incremental-update path: on random graphs
//! under random delta sequences (inserts, deletes, score overrides,
//! interleaved compactions), the overlay must stay structurally
//! identical to a from-scratch rebuild, incrementally repaired indexes
//! must equal freshly built ones, and every algorithm × aggregate must
//! answer on the repaired state exactly as a fresh engine does on the
//! rebuilt graph (bit-identical for SUM/MAX, 1e-9 for AVG) — with the
//! repaired state's build counter pinned at zero.

use std::collections::BTreeMap;

use proptest::prelude::*;

use lona_core::delta::{apply_score_overrides, repair_engine_state};
use lona_core::{
    compile_to_vec, Aggregate, Algorithm, BackwardOptions, CompileSpec, CompiledGraph, EngineState,
    ForwardOptions, GammaSpec, LonaEngine, ProcessingOrder, TopKQuery,
};
use lona_graph::{CsrGraph, GraphBuilder, GraphDelta, GraphStore, NodeOrder, OverlayGraph};
use lona_relevance::ScoreVec;

/// One random delta: staged edge ops, score overrides, and whether to
/// compact the overlay right after applying it.
#[derive(Debug, Clone)]
struct DeltaCase {
    inserts: Vec<(u32, u32)>,
    deletes: Vec<(u32, u32)>,
    scores: Vec<(u32, f64)>,
    compact_after: bool,
}

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: ScoreVec,
    deltas: Vec<DeltaCase>,
    h: u32,
    k: usize,
}

/// Every serial algorithm family and processing order.
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Base,
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::NodeId,
        }),
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::DegreeDescending,
        }),
        Algorithm::LonaForward(ForwardOptions {
            order: ProcessingOrder::ScoreDescending,
        }),
        Algorithm::BackwardNaive,
        Algorithm::LonaBackward(BackwardOptions {
            gamma: GammaSpec::Fixed(0.0),
        }),
        Algorithm::LonaBackward(BackwardOptions {
            gamma: GammaSpec::NonzeroQuantile(0.9),
        }),
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (4u32..20, 0usize..40)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                proptest::collection::vec(
                    (
                        proptest::collection::vec((0..n, 0..n), 0..6),
                        proptest::collection::vec((0..n, 0..n), 0..6),
                        proptest::collection::vec((0..n, 0.0f64..=1.0), 0..4),
                        0u8..2,
                    ),
                    1..4,
                ),
                1u32..4,
                1usize..8,
            )
        })
        .prop_map(|(n, edges, scores, deltas, h, k)| Case {
            g: GraphBuilder::undirected()
                .with_num_nodes(n)
                .extend_edges(edges.into_iter().filter(|(u, v)| u != v))
                .build()
                .unwrap(),
            scores: ScoreVec::new(scores),
            deltas: deltas
                .into_iter()
                .map(|(ins, del, sc, compact_after)| DeltaCase {
                    inserts: ins.into_iter().filter(|(u, v)| u != v).collect(),
                    deletes: del.into_iter().filter(|(u, v)| u != v).collect(),
                    scores: sc,
                    compact_after: compact_after == 1,
                })
                .collect(),
            h,
            k,
        })
}

fn canon(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

/// Mirror of the overlay's edge semantics on a plain edge set:
/// deletes before inserts, inserting an existing edge is a no-op,
/// deleting an absent edge is a no-op.
fn apply_to_model(model: &mut BTreeMap<(u32, u32), ()>, d: &DeltaCase) {
    for &(u, v) in &d.deletes {
        model.remove(&canon(u, v));
    }
    for &(u, v) in &d.inserts {
        model.entry(canon(u, v)).or_insert(());
    }
}

fn to_delta(d: &DeltaCase) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for &(u, v) in &d.deletes {
        delta = delta.delete(u, v);
    }
    for &(u, v) in &d.inserts {
        delta = delta.insert(u, v);
    }
    for &(u, s) in &d.scores {
        delta = delta.override_score(u, s);
    }
    delta
}

fn rebuild(n: u32, model: &BTreeMap<(u32, u32), ()>) -> CsrGraph {
    GraphBuilder::undirected()
        .with_num_nodes(n)
        .extend_edges(model.keys().copied())
        .build()
        .unwrap()
}

fn edge_list(g: &CsrGraph) -> Vec<(u32, u32, u32)> {
    g.edges().map(|(u, v, w)| (u.0, v.0, w.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After ANY interleaving of inserts, deletes, score overrides and
    /// compactions: the overlay equals a rebuild, repaired indexes
    /// equal fresh ones with zero builds charged, counters stay
    /// conserved, and every algorithm answers identically.
    #[test]
    fn overlay_and_repair_match_rebuild(case in arb_case()) {
        let n = case.g.num_nodes() as u32;
        let mut model: BTreeMap<(u32, u32), ()> =
            case.g.edges().map(|(u, v, _)| (canon(u.0, v.0), ())).collect();

        let mut state = EngineState::new();
        state.prepare_size_index(case.g.view(), case.h);
        state.prepare_diff_index(case.g.view(), case.h);

        let mut overlay = OverlayGraph::new(&case.g);
        let mut edges_changed = false;
        for d in &case.deltas {
            apply_to_model(&mut model, d);
            let applied = overlay.apply(&to_delta(d)).unwrap();
            if let Some(old) = &applied.old {
                edges_changed = true;
                let (repaired, stats) =
                    repair_engine_state(old.view(), overlay.csr(), &applied.touched, state);
                state = repaired;
                // Conservation: every index unit is either repaired or
                // provably skipped, never both, never neither.
                let full = (overlay.csr().num_nodes()
                    + overlay.csr().num_adjacency_entries()) as u64;
                prop_assert_eq!(
                    stats.entries_repaired + stats.rebuild_avoided_units, full,
                    "unit accounting broke"
                );
            }
            if d.compact_after {
                overlay.compact();
            }
        }

        // Structure: the overlay's merged CSR is the rebuilt graph.
        let rebuilt = rebuild(n, &model);
        let merged: Vec<(u32, u32, u32)> = overlay
            .csr()
            .edges()
            .map(|(u, v, w)| (u.0, v.0, w.to_bits()))
            .collect();
        prop_assert_eq!(&merged, &edge_list(&rebuilt));

        // Indexes: repaired state equals a from-scratch build, and if
        // any edge changed the repaired state charged zero builds.
        let mut fresh = EngineState::new();
        fresh.prepare_size_index(rebuilt.view(), case.h);
        fresh.prepare_diff_index(rebuilt.view(), case.h);
        prop_assert_eq!(state.size_index(), fresh.size_index());
        prop_assert_eq!(state.diff_index(), fresh.diff_index());
        if edges_changed {
            prop_assert_eq!(state.index_builds(), 0);
        }

        // Scores: overrides land last-wins with ScoreVec clamping.
        let updated = apply_score_overrides(&case.scores, overlay.score_overrides());
        let mut want = case.scores.as_slice().to_vec();
        for d in &case.deltas {
            for &(u, s) in &d.scores {
                want[u as usize] = s;
            }
        }
        let want = ScoreVec::new(want);
        prop_assert_eq!(updated.as_slice(), want.as_slice());

        // Queries: every algorithm × aggregate on the repaired state
        // answers exactly as a fresh engine on the rebuilt graph.
        let mut warm = LonaEngine::from_state(&overlay, case.h, state);
        let mut cold = LonaEngine::new(&rebuilt, case.h);
        for aggregate in [Aggregate::Sum, Aggregate::Avg, Aggregate::Max] {
            let query = TopKQuery::new(case.k, aggregate);
            for algorithm in algorithms() {
                let w = warm.run(&algorithm, &query, &updated);
                let c = cold.run(&algorithm, &query, &updated);
                if aggregate == Aggregate::Avg {
                    prop_assert!(
                        w.same_values(&c, 1e-9),
                        "{:?} AVG diverged: {:?} vs {:?}", algorithm, w.entries, c.entries
                    );
                } else {
                    prop_assert_eq!(w.entries.len(), c.entries.len());
                    for (a, b) in w.entries.iter().zip(c.entries.iter()) {
                        prop_assert_eq!(a.0, b.0, "{:?} {:?} ranked different nodes",
                            algorithm, aggregate);
                        prop_assert_eq!(a.1.to_bits(), b.1.to_bits(),
                            "{:?} {:?} diverged", algorithm, aggregate);
                    }
                }
            }
        }
        prop_assert_eq!(warm.state().index_builds(), if edges_changed { 0 } else { 2 });
    }

    /// `compact()` + `into_graph()` round-trips through the compiled
    /// container: compile the mutated graph, map it back, and the
    /// warm-state engine answers bit-identically with zero builds.
    #[test]
    fn compacted_overlay_roundtrips_through_compile(case in arb_case()) {
        let n = case.g.num_nodes() as u32;
        let mut model: BTreeMap<(u32, u32), ()> =
            case.g.edges().map(|(u, v, _)| (canon(u.0, v.0), ())).collect();
        let mut overlay = OverlayGraph::new(&case.g);
        for d in &case.deltas {
            apply_to_model(&mut model, d);
            overlay.apply(&to_delta(d)).unwrap();
        }
        let updated = apply_score_overrides(&case.scores, overlay.score_overrides());
        let g2 = overlay.into_graph();
        prop_assert_eq!(&edge_list(&g2), &edge_list(&rebuild(n, &model)));

        let bytes = compile_to_vec(&CompileSpec {
            graph: g2.view(),
            scores: Some(&updated),
            hops: &[case.h],
            with_diff: true,
            order: NodeOrder::Natural,
        })
        .unwrap();
        let c = CompiledGraph::from_bytes(bytes).unwrap();
        let state = c.engine_state(case.h).unwrap();
        let mut warm = LonaEngine::from_state(&c, case.h, state);
        let mut cold = LonaEngine::new(&g2, case.h);
        let query = TopKQuery::new(case.k, Aggregate::Sum);
        for algorithm in algorithms() {
            let w = warm.run(&algorithm, &query, &updated);
            let c = cold.run(&algorithm, &query, &updated);
            prop_assert_eq!(w.entries.len(), c.entries.len());
            for (a, b) in w.entries.iter().zip(c.entries.iter()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        prop_assert_eq!(warm.state().index_builds(), 0);
    }
}
