//! Property tests for the batch subsystem: `run_batch` must return
//! results identical to running each query through `Engine::run`
//! serially with the same plan, across random graphs × planner
//! choices × thread counts {1, 2, 4} — and the batch must never
//! charge an index build to an individual query.

use proptest::prelude::*;

use lona_core::{
    Aggregate, Algorithm, BatchOptions, BatchQuery, LonaEngine, PlannerConfig, TopKQuery,
};
use lona_graph::{CsrGraph, GraphBuilder};
use lona_relevance::ScoreVec;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
struct Case {
    g: CsrGraph,
    scores: Vec<ScoreVec>,
    h: u32,
    queries: Vec<(usize, Aggregate, bool, usize)>, // (k, agg, include_self, score idx)
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Sum),
        Just(Aggregate::Avg),
        Just(Aggregate::DistanceWeightedSum),
        Just(Aggregate::Max)
    ]
}

fn arb_case() -> impl Strategy<Value = Case> {
    (4u32..36, 0usize..100)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), m),
                // Two score vectors per case: one sparse (every third
                // node may score — the backward regime), one dense.
                proptest::collection::vec(0.0f64..=1.0, n as usize),
                proptest::collection::vec(0.01f64..=1.0, n as usize),
                1u32..4,
                proptest::collection::vec(
                    (1usize..10, arb_aggregate(), proptest::bool::ANY, 0usize..2),
                    1..8,
                ),
            )
        })
        .prop_map(|(n, edges, sparse, dense, h, queries)| {
            let sparse: Vec<f64> = sparse
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % 3 == 0 { s } else { 0.0 })
                .collect();
            Case {
                g: GraphBuilder::undirected()
                    .with_num_nodes(n)
                    .extend_edges(edges)
                    .build()
                    .unwrap(),
                scores: vec![ScoreVec::new(sparse), ScoreVec::new(dense)],
                h,
                queries,
            }
        })
}

fn build_batch<'s>(case: &Case, scores: &'s [ScoreVec]) -> Vec<BatchQuery<'s>> {
    case.queries
        .iter()
        .map(|&(k, aggregate, include_self, si)| {
            BatchQuery::new(
                TopKQuery::new(k, aggregate).include_self(include_self),
                &scores[si],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planner-chosen batches equal a serial Engine::run loop
    /// bit-for-bit at every thread count, and never charge builds to
    /// individual queries.
    #[test]
    fn batch_matches_serial_loop(case in arb_case()) {
        let batch = build_batch(&case, &case.scores);
        for threads in THREAD_COUNTS {
            let mut batch_engine = LonaEngine::new(&case.g, case.h);
            let out = batch_engine.run_batch(&batch, &BatchOptions::with_threads(threads));
            prop_assert_eq!(out.results.len(), batch.len());
            prop_assert_eq!(out.plans.len(), batch.len());

            let mut serial_engine = LonaEngine::new(&case.g, case.h);
            for (i, (bq, plan)) in batch.iter().zip(&out.plans).enumerate() {
                let expect = serial_engine.run(&plan.algorithm, &bq.query, bq.scores);
                prop_assert_eq!(
                    &out.results[i].entries,
                    &expect.entries,
                    "threads={} query {} ({}, {:?}) diverged",
                    threads,
                    i,
                    plan.algorithm,
                    plan.reason
                );
                prop_assert_eq!(
                    out.results[i].stats.index_build,
                    std::time::Duration::ZERO,
                    "query {} charged an index build inside a batch",
                    i
                );
            }
        }
    }

    /// Forced plans (the override escape hatch) flow through the
    /// batch layer unchanged and still match the serial loop.
    #[test]
    fn forced_batch_matches_serial_loop(case in arb_case()) {
        for force in [Algorithm::Base, Algorithm::BackwardNaive, Algorithm::forward()] {
            let batch = build_batch(&case, &case.scores);
            let opts = BatchOptions {
                force: Some(force),
                ..BatchOptions::with_threads(2)
            };
            let mut batch_engine = LonaEngine::new(&case.g, case.h);
            let out = batch_engine.run_batch(&batch, &opts);

            let mut serial_engine = LonaEngine::new(&case.g, case.h);
            for (i, bq) in batch.iter().enumerate() {
                prop_assert_eq!(out.plans[i].algorithm, force);
                let expect = serial_engine.run(&force, &bq.query, bq.scores);
                prop_assert_eq!(
                    &out.results[i].entries,
                    &expect.entries,
                    "forced {} query {} diverged",
                    force,
                    i
                );
            }
        }
    }

    /// run_planned agrees with planning then running by hand.
    #[test]
    fn run_planned_is_plan_then_run(case in arb_case()) {
        let query = {
            let (k, aggregate, include_self, _) = case.queries[0];
            TopKQuery::new(k, aggregate).include_self(include_self)
        };
        let scores = &case.scores[0];
        let cfg = PlannerConfig::default();

        let mut a = LonaEngine::new(&case.g, case.h);
        let plan = lona_core::plan_query(&a, &query, scores, &cfg);
        let expect = a.run(&plan.algorithm, &query, scores);

        let mut b = LonaEngine::new(&case.g, case.h);
        let (got_plan, got) = b.run_planned(&query, scores, &cfg);
        prop_assert_eq!(got_plan.algorithm, plan.algorithm);
        prop_assert_eq!(got_plan.reason, plan.reason);
        prop_assert_eq!(got.entries, expect.entries);
    }
}
