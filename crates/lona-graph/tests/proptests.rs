//! Property tests for the graph substrate.

use proptest::prelude::*;

use lona_graph::io::{read_snapshot, write_snapshot};
use lona_graph::traversal::{bfs_distances, KhopCollector};
use lona_graph::{CsrGraph, GraphBuilder};

/// Strategy: a random simple undirected graph with up to `n` nodes.
fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..=max_edges),
            )
        })
        .prop_map(|(n, edges)| {
            GraphBuilder::undirected()
                .with_num_nodes(n)
                .extend_edges(edges)
                .build()
                .expect("arbitrary graph must build")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants: sorted unique neighbor slices, symmetric
    /// adjacency, consistent entry counts.
    #[test]
    fn csr_invariants(g in arb_graph(40, 120)) {
        let mut entries = 0usize;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            entries += nbrs.len();
            // sorted strictly ascending => unique
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &v in nbrs {
                prop_assert!(v.index() < g.num_nodes());
                prop_assert!(g.has_edge(v, u), "asymmetric edge {u:?}->{v:?}");
                prop_assert_ne!(v, u, "self-loop survived default policy");
            }
        }
        prop_assert_eq!(entries, g.num_adjacency_entries());
        prop_assert_eq!(entries, 2 * g.num_edges());
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    /// The h-hop collector agrees with exact BFS distances.
    #[test]
    fn khop_matches_bfs(g in arb_graph(24, 60), h in 1u32..4) {
        let mut c = KhopCollector::new(g.num_nodes());
        for u in g.nodes() {
            let dist = bfs_distances(&g, u);
            let mut expect: Vec<u32> = (0..g.num_nodes() as u32)
                .filter(|&v| v != u.0 && dist[v as usize] <= h)
                .collect();
            expect.sort_unstable();
            let mut got = Vec::new();
            let n = c.for_each(&g, u, h, |v| got.push(v.0));
            got.sort_unstable();
            prop_assert_eq!(n, got.len());
            prop_assert_eq!(got, expect);
        }
    }

    /// Snapshot round trip preserves the graph exactly.
    #[test]
    fn snapshot_round_trip(g in arb_graph(40, 150)) {
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let g2 = read_snapshot(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for u in g.nodes() {
            prop_assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    /// Builder is idempotent: rebuilding from the emitted edge list
    /// yields the same adjacency.
    #[test]
    fn rebuild_from_edges(g in arb_graph(30, 90)) {
        let mut b = GraphBuilder::undirected().with_num_nodes(g.num_nodes() as u32);
        for (u, v, _) in g.edges() {
            b.push_edge(u.0, v.0);
        }
        let g2 = b.build().unwrap();
        for u in g.nodes() {
            prop_assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    /// Degrees sum to twice the edge count (handshake lemma).
    #[test]
    fn handshake_lemma(g in arb_graph(50, 200)) {
        let sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }
}

#[test]
fn khop_collector_large_reuse_smoke() {
    // A deterministic medium graph exercising buffer reuse at depth 3.
    let mut b = GraphBuilder::undirected();
    for i in 0u32..500 {
        b.push_edge(i, (i + 1) % 500);
        b.push_edge(i, (i * 7 + 3) % 500);
    }
    let g = b.build().unwrap();
    let mut c = KhopCollector::new(g.num_nodes());
    let mut total = 0usize;
    for u in g.nodes() {
        total += c.count(&g, u, 3);
    }
    assert!(total > 0);
    // Re-running yields identical totals (collector state is clean).
    let mut total2 = 0usize;
    for u in g.nodes() {
        total2 += c.count(&g, u, 3);
    }
    assert_eq!(total, total2);
}
