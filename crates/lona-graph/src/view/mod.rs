//! Graph views: induced subgraphs.

mod subgraph;

pub use subgraph::{induced_subgraph, Subgraph};
