//! Induced subgraph extraction.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::node::NodeId;
use crate::Result;

/// An induced subgraph plus the id mappings to and from the parent.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph with dense ids `0..nodes.len()`.
    pub graph: CsrGraph,
    /// `to_parent[i]` = parent id of subgraph node `i`.
    pub to_parent: Vec<NodeId>,
}

impl Subgraph {
    /// Map a subgraph node back to its parent id.
    pub fn parent_id(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }
}

/// Extract the subgraph induced by `nodes` (duplicates ignored).
/// Edge weights are carried over.
pub fn induced_subgraph(g: &CsrGraph, nodes: &[NodeId]) -> Result<Subgraph> {
    // Dense mapping parent -> local, NodeId::MAX sentinel = absent.
    let mut to_local = vec![u32::MAX; g.num_nodes()];
    let mut to_parent = Vec::with_capacity(nodes.len());
    for &u in nodes {
        if to_local[u.index()] == u32::MAX {
            to_local[u.index()] = to_parent.len() as u32;
            to_parent.push(u);
        }
    }

    let mut builder = if g.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    builder = builder.with_num_nodes(to_parent.len() as u32);
    let weighted = g.has_weights();
    for (local_u, &parent_u) in to_parent.iter().enumerate() {
        for (v, w) in g.weighted_neighbors(parent_u) {
            let local_v = to_local[v.index()];
            if local_v == u32::MAX {
                continue;
            }
            // For undirected graphs each edge appears from both sides;
            // keep one (builder dedups anyway, this halves staging).
            if !g.is_directed() && local_v < local_u as u32 {
                continue;
            }
            if weighted {
                builder.push_weighted_edge(local_u as u32, local_v, w);
            } else {
                builder.push_edge(local_u as u32, local_v);
            }
        }
    }
    Ok(Subgraph {
        graph: builder.build()?,
        to_parent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-3, 2-3, 1-2
        GraphBuilder::undirected()
            .extend_edges([(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)])
            .build()
            .unwrap()
    }

    #[test]
    fn triangle_extraction() {
        let g = diamond();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.parent_id(NodeId(0)), NodeId(0));
    }

    #[test]
    fn duplicates_in_selection_ignored() {
        let g = diamond();
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(1), NodeId(3)]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn empty_selection() {
        let g = diamond();
        let sub = induced_subgraph(&g, &[]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 0);
    }

    #[test]
    fn weights_survive() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 4.0)
            .add_weighted_edge(1, 2, 8.0)
            .build()
            .unwrap();
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(sub.graph.edge_weight(NodeId(0), NodeId(1)), Some(8.0));
    }

    #[test]
    fn directed_subgraph_keeps_orientation() {
        let g = GraphBuilder::directed()
            .extend_edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(1)]).unwrap();
        // Only arc 0->1 survives.
        assert_eq!(sub.graph.num_edges(), 1);
        assert!(sub.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(!sub.graph.has_edge(NodeId(1), NodeId(0)));
    }
}
