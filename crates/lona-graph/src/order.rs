//! Node reordering for cache locality.
//!
//! Every LONA inner loop walks `offsets[v]`/`scores[v]` in frontier
//! order, so the *numbering* of nodes decides how the memory
//! hierarchy sees a scan: neighbors with nearby ids share cache
//! lines, neighbors with scattered ids each cost a miss. This module
//! computes alternative numberings — [`NodeOrder::Degree`] packs hubs
//! (the nodes every scan revisits) at the front of all arrays,
//! [`NodeOrder::Bfs`] gives a Cuthill–McKee-flavored breadth-first
//! numbering so h-hop neighborhoods occupy near-contiguous id ranges —
//! and applies them through a lossless [`Permutation`].
//!
//! Renumbering is identity-preserving: [`reorder`] produces a
//! [`CsrGraph`] whose adjacency rows are re-sorted under the new ids
//! (the permutations here are *not* monotone, unlike the shard remap
//! in [`mod@crate::partition`], so rows must be re-sorted to keep the CSR
//! sorted-row invariant), and the permutation maps every result back
//! to original ids. Query answers over a reordered graph equal the
//! natural-order answers as sets; f64 sums agree to summation-order
//! tolerance because the engine accumulates each depth in ascending
//! id order of *whichever* numbering is active.

use std::cmp::Reverse;

use crate::csr::{CsrGraph, CsrView};
use crate::error::GraphError;
use crate::node::NodeId;

/// A node numbering the engine can run under.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum NodeOrder {
    /// The input numbering, unchanged (the identity permutation).
    #[default]
    Natural,
    /// Descending degree, ties by ascending original id: hubs first,
    /// so the nodes every scan keeps revisiting share the first few
    /// pages of `offsets`/`targets`/`scores`.
    Degree,
    /// Breadth-first (Cuthill–McKee-flavored) numbering: per
    /// component, start from a minimum-degree node and number nodes
    /// in BFS discovery order with neighbors enqueued by ascending
    /// `(degree, id)`. Neighborhoods become near-contiguous id
    /// ranges, which is what an h-hop scan actually touches.
    Bfs,
}

impl NodeOrder {
    /// Every order, in presentation order.
    pub const ALL: [NodeOrder; 3] = [NodeOrder::Natural, NodeOrder::Degree, NodeOrder::Bfs];

    /// Stable lowercase name (CLI flag value and bench label).
    pub fn name(self) -> &'static str {
        match self {
            NodeOrder::Natural => "natural",
            NodeOrder::Degree => "degree",
            NodeOrder::Bfs => "bfs",
        }
    }

    /// Stable numeric code for on-disk storage (the compiled
    /// container's permutation section tags itself with this).
    pub fn code(self) -> u32 {
        match self {
            NodeOrder::Natural => 0,
            NodeOrder::Degree => 1,
            NodeOrder::Bfs => 2,
        }
    }

    /// Inverse of [`NodeOrder::code`]; `None` for unknown codes (a
    /// file written by a future revision).
    pub fn from_code(code: u32) -> Option<NodeOrder> {
        match code {
            0 => Some(NodeOrder::Natural),
            1 => Some(NodeOrder::Degree),
            2 => Some(NodeOrder::Bfs),
            _ => None,
        }
    }

    /// Compute this order's permutation for `g`.
    pub fn compute(self, g: CsrView<'_>) -> Permutation {
        let n = g.num_nodes();
        match self {
            NodeOrder::Natural => Permutation::identity(n),
            NodeOrder::Degree => {
                let mut ids: Vec<u32> = (0..n as u32).collect();
                ids.sort_unstable_by_key(|&u| (Reverse(g.degree(NodeId(u))), u));
                Permutation::from_new_to_old(ids).expect("degree order is a bijection")
            }
            NodeOrder::Bfs => {
                Permutation::from_new_to_old(bfs_order(g)).expect("bfs order is a bijection")
            }
        }
    }
}

impl std::fmt::Display for NodeOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for NodeOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "natural" | "none" | "identity" => Ok(NodeOrder::Natural),
            "degree" => Ok(NodeOrder::Degree),
            "bfs" | "rcm" => Ok(NodeOrder::Bfs),
            other => Err(format!("unknown node order `{other}` (natural|degree|bfs)")),
        }
    }
}

/// Cuthill–McKee-flavored BFS numbering: deterministic for a given
/// CSR, independent of anything but the graph structure.
fn bfs_order(g: CsrView<'_>) -> Vec<u32> {
    let n = g.num_nodes();
    // Component starts in ascending (degree, id): the classic
    // peripheral-ish seed, and a deterministic walk over components.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_unstable_by_key(|&u| (g.degree(NodeId(u)), u));

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut scratch: Vec<u32> = Vec::new();
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        order.push(seed);
        let mut head = order.len() - 1;
        while head < order.len() {
            let x = order[head];
            head += 1;
            scratch.clear();
            for &v in g.neighbors(NodeId(x)) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    scratch.push(v.0);
                }
            }
            scratch.sort_unstable_by_key(|&v| (g.degree(NodeId(v)), v));
            order.extend_from_slice(&scratch);
        }
    }
    order
}

/// A lossless node renumbering: `new_to_old[new] = old` and its
/// inverse, both validated bijections over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<u32>,
    old_to_new: Vec<u32>,
}

impl Permutation {
    /// The identity permutation over `n` nodes.
    pub fn identity(n: usize) -> Permutation {
        let ids: Vec<u32> = (0..n as u32).collect();
        Permutation {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Build from a `new -> old` map, validating that it is a
    /// bijection over `0..len`. This is the entry point for
    /// permutations read from disk, so a hostile map must come back
    /// as an error, never a panic or an out-of-bounds index later.
    pub fn from_new_to_old(new_to_old: Vec<u32>) -> Result<Permutation, GraphError> {
        let n = new_to_old.len();
        let mut old_to_new = vec![u32::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            let slot = old_to_new.get_mut(old as usize).ok_or_else(|| {
                GraphError::BadSnapshot(format!("permutation entry {old} out of range ({n} nodes)"))
            })?;
            if *slot != u32::MAX {
                return Err(GraphError::BadSnapshot(format!(
                    "permutation maps two new ids to old id {old}"
                )));
            }
            *slot = new as u32;
        }
        Ok(Permutation {
            new_to_old,
            old_to_new,
        })
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the permutation covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Whether this is the identity (reordering would be a no-op).
    pub fn is_identity(&self) -> bool {
        self.new_to_old
            .iter()
            .enumerate()
            .all(|(i, &old)| i as u32 == old)
    }

    /// Map an original id into the reordered numbering.
    #[inline(always)]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        NodeId(self.old_to_new[old.index()])
    }

    /// Map a reordered id back to its original id.
    #[inline(always)]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        NodeId(self.new_to_old[new.index()])
    }

    /// The `new -> old` map (what the compiled container stores).
    pub fn new_to_old(&self) -> &[u32] {
        &self.new_to_old
    }

    /// The `old -> new` map.
    pub fn old_to_new(&self) -> &[u32] {
        &self.old_to_new
    }
}

/// Renumber `g` under `perm`, producing an owned CSR with the same
/// edges, weights, direction and logical edge count. Adjacency rows
/// are re-sorted under the new ids (weights carried through the
/// sort), so every CSR invariant — including the sorted-row binary
/// searches — holds on the result.
///
/// Panics if `perm.len() != g.num_nodes()`.
pub fn reorder(g: CsrView<'_>, perm: &Permutation) -> CsrGraph {
    assert_eq!(
        perm.len(),
        g.num_nodes(),
        "permutation covers {} nodes but the graph has {}",
        perm.len(),
        g.num_nodes()
    );
    let n = g.num_nodes();
    let has_weights = g.has_weights();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets: Vec<NodeId> = Vec::with_capacity(g.num_adjacency_entries());
    let mut weights: Option<Vec<f32>> = has_weights.then(|| Vec::with_capacity(targets.capacity()));
    let mut row: Vec<(u32, f32)> = Vec::new();

    offsets.push(0);
    for new_u in 0..n as u32 {
        let old_u = perm.to_old(NodeId(new_u));
        row.clear();
        for (v, w) in g.weighted_neighbors(old_u) {
            row.push((perm.to_new(v).0, w));
        }
        // The permutation is not monotone, so the mapped row must be
        // re-sorted to preserve the sorted-adjacency invariant.
        row.sort_unstable_by_key(|&(v, _)| v);
        for &(v, w) in &row {
            targets.push(NodeId(v));
            if let Some(ws) = weights.as_mut() {
                ws.push(w);
            }
        }
        offsets.push(targets.len() as u32);
    }
    CsrGraph::from_parts(offsets, targets, weights, g.num_edges(), g.is_directed())
}

impl CsrGraph {
    /// Renumber this graph under `order`, returning the reordered CSR
    /// and the permutation that maps between the two numberings.
    pub fn reordered(&self, order: NodeOrder) -> (CsrGraph, Permutation) {
        let perm = order.compute(self.view());
        let g = reorder(self.view(), &perm);
        (g, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star_plus_path() -> CsrGraph {
        // Hub 3 with spokes 0,1,2 plus a path 2-4-5.
        GraphBuilder::undirected()
            .extend_edges([(3, 0), (3, 1), (3, 2), (2, 4), (4, 5)])
            .build()
            .unwrap()
    }

    #[test]
    fn parsing_and_names() {
        for order in NodeOrder::ALL {
            assert_eq!(order.name().parse::<NodeOrder>().unwrap(), order);
            assert_eq!(NodeOrder::from_code(order.code()), Some(order));
            assert_eq!(format!("{order}"), order.name());
        }
        assert_eq!("rcm".parse::<NodeOrder>().unwrap(), NodeOrder::Bfs);
        assert_eq!("none".parse::<NodeOrder>().unwrap(), NodeOrder::Natural);
        assert!("hilbert".parse::<NodeOrder>().is_err());
        assert_eq!(NodeOrder::from_code(99), None);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = star_plus_path();
        let perm = NodeOrder::Degree.compute(g.view());
        // Degrees: 3 -> 3, 2 -> 2, 4 -> 2, rest 1; ties by id.
        assert_eq!(perm.new_to_old(), &[3, 2, 4, 0, 1, 5]);
        assert_eq!(perm.to_new(NodeId(3)), NodeId(0));
        assert_eq!(perm.to_old(NodeId(0)), NodeId(3));
    }

    #[test]
    fn bfs_order_visits_every_node_once() {
        let g = star_plus_path();
        for order in [NodeOrder::Bfs, NodeOrder::Degree] {
            let perm = order.compute(g.view());
            let mut seen = perm.new_to_old().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..6).collect::<Vec<u32>>(), "{order}");
        }
        // BFS starts from a minimum-degree node (0, 1, 5 tie at
        // degree 1; id breaks the tie -> 0).
        let perm = NodeOrder::Bfs.compute(g.view());
        assert_eq!(perm.to_old(NodeId(0)), NodeId(0));
    }

    #[test]
    fn natural_is_identity() {
        let g = star_plus_path();
        let perm = NodeOrder::Natural.compute(g.view());
        assert!(perm.is_identity());
        assert!(!NodeOrder::Degree.compute(g.view()).is_identity());
    }

    #[test]
    fn permutation_round_trips() {
        let g = star_plus_path();
        for order in NodeOrder::ALL {
            let perm = order.compute(g.view());
            for u in 0..g.num_nodes() as u32 {
                assert_eq!(perm.to_new(perm.to_old(NodeId(u))), NodeId(u));
                assert_eq!(perm.to_old(perm.to_new(NodeId(u))), NodeId(u));
            }
        }
    }

    #[test]
    fn hostile_maps_rejected() {
        assert!(
            Permutation::from_new_to_old(vec![0, 1, 5]).is_err(),
            "out of range"
        );
        assert!(
            Permutation::from_new_to_old(vec![0, 0, 1]).is_err(),
            "duplicate"
        );
        assert!(Permutation::from_new_to_old(vec![]).unwrap().is_empty());
    }

    #[test]
    fn reorder_preserves_structure() {
        let g = star_plus_path();
        for order in [NodeOrder::Degree, NodeOrder::Bfs] {
            let (r, perm) = g.reordered(order);
            assert_eq!(r.num_nodes(), g.num_nodes());
            assert_eq!(r.num_edges(), g.num_edges());
            assert_eq!(r.num_adjacency_entries(), g.num_adjacency_entries());
            assert_eq!(r.is_directed(), g.is_directed());
            for old_u in g.nodes() {
                let new_u = perm.to_new(old_u);
                assert_eq!(r.degree(new_u), g.degree(old_u));
                // The mapped neighbor sets agree and stay sorted.
                let mut mapped: Vec<NodeId> =
                    g.neighbors(old_u).iter().map(|&v| perm.to_new(v)).collect();
                mapped.sort_unstable();
                assert_eq!(r.neighbors(new_u), &mapped[..], "{order}: node {old_u}");
                assert!(r.neighbors(new_u).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn reorder_carries_weights_through_the_row_sort() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 0.5)
            .add_weighted_edge(0, 2, 2.5)
            .add_weighted_edge(1, 2, 7.0)
            .build()
            .unwrap();
        let (r, perm) = g.reordered(NodeOrder::Degree);
        for (u, v, w) in g.edges() {
            assert_eq!(
                r.edge_weight(perm.to_new(u), perm.to_new(v)),
                Some(w),
                "edge {u}-{v}"
            );
        }
    }

    #[test]
    fn reorder_length_mismatch_panics() {
        let g = star_plus_path();
        let perm = Permutation::identity(3);
        let err = std::panic::catch_unwind(|| reorder(g.view(), &perm));
        assert!(err.is_err());
    }
}
