//! Node identifiers.

use std::fmt;

/// A node identifier: a dense index in `0..num_nodes`.
///
/// LONA graphs are static once built, so node ids are plain dense `u32`
/// indexes. Using `u32` instead of `usize` halves the memory of the
/// adjacency array, which matters for multi-million-edge networks (the
/// paper's citation network has 16M edges) and keeps more of the
/// frontier in cache during h-hop expansion.
///
/// The layout is guaranteed identical to `u32` (`repr(transparent)`),
/// so `[NodeId]` slices can be viewed over raw little-endian `u32`
/// storage — the compiled-file loader maps adjacency sections without
/// copying on that basis.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Largest representable id. Graphs are limited to `u32::MAX - 1`
    /// nodes; the sentinel is reserved for "no node" markers in
    /// internal scratch arrays.
    pub const MAX: NodeId = NodeId(u32::MAX - 1);

    /// The id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` exceeds [`NodeId::MAX`].
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        assert!(i <= Self::MAX.0 as usize, "node index {i} out of range");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline(always)]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline(always)]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let n = NodeId::from_index(42);
        assert_eq!(n, NodeId(42));
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(100) > NodeId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_sentinel() {
        let _ = NodeId::from_index(u32::MAX as usize);
    }
}
