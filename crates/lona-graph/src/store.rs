//! The storage abstraction: anything that can expose a [`CsrView`].
//!
//! The engine's hot loops all read the graph through [`CsrView`] — a
//! `Copy` bundle of slices — so the only thing a storage backend has
//! to provide is that view. [`GraphStore`] is that one-method trait.
//! Public entry points (engine constructors, partitioners, index
//! builders) are generic over it; everything below them is monomorphic
//! over the view, so the in-RAM and memory-mapped backends run the
//! same machine code.

use std::sync::Arc;

use crate::csr::{CsrGraph, CsrView};

/// A CSR graph storage backend.
///
/// Implemented by the in-RAM [`CsrGraph`], the memory-mapped
/// [`crate::CsrGraphMmap`], [`CsrView`] itself, and references /
/// `Arc`s to any of them — call sites never need to unwrap a smart
/// pointer before handing the graph to the engine.
pub trait GraphStore {
    /// Borrow the graph as the slice bundle the engine consumes.
    fn csr(&self) -> CsrView<'_>;
}

impl GraphStore for CsrGraph {
    #[inline(always)]
    fn csr(&self) -> CsrView<'_> {
        self.view()
    }
}

impl GraphStore for CsrView<'_> {
    #[inline(always)]
    fn csr(&self) -> CsrView<'_> {
        *self
    }
}

impl<G: GraphStore + ?Sized> GraphStore for &G {
    #[inline(always)]
    fn csr(&self) -> CsrView<'_> {
        (**self).csr()
    }
}

impl<G: GraphStore + ?Sized> GraphStore for Arc<G> {
    #[inline(always)]
    fn csr(&self) -> CsrView<'_> {
        (**self).csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::node::NodeId;

    fn takes_store(g: &impl GraphStore) -> usize {
        g.csr().num_nodes()
    }

    #[test]
    fn every_wrapper_dispatches() {
        let g = GraphBuilder::undirected().add_edge(0, 1).build().unwrap();
        assert_eq!(takes_store(&g), 2);
        assert_eq!(takes_store(&g.view()), 2);
        assert_eq!(takes_store(&&g), 2);
        let arc = Arc::new(g);
        assert_eq!(takes_store(&arc), 2);
        assert_eq!(arc.csr().degree(NodeId(0)), 1);
    }
}
