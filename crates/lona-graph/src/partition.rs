//! Edge-cut graph partitioning for the sharded scatter-gather engine.
//!
//! The paper closes with "we are currently developing an
//! infrastructure to partition large networks into subnetworks and
//! distribute them into multiple machines". This module is that
//! infrastructure's storage layer: it splits one [`CsrGraph`] into
//! shards such that every shard can answer h-hop neighborhood
//! aggregation queries about the nodes it *owns* **exactly**, without
//! talking to any other shard.
//!
//! ## Owned nodes, halo nodes, and exactness
//!
//! A [`PartitionStrategy`] assigns every global node to exactly one
//! owning shard. Each shard then materializes the induced subgraph
//! over its owned nodes **plus their `halo_hops`-hop halo** (every
//! node within `halo_hops` of an owned node). For any owned node `u`
//! and any node `v` with `dist_G(u, v) = d <= halo_hops`, every vertex
//! on a shortest `u`–`v` path is itself within `halo_hops` of `u`, so
//! the whole path survives into the shard subgraph and
//! `dist_shard(u, v) = d`. Distances can only grow under vertex
//! deletion, so nodes outside the ball stay outside. Hence the h-hop
//! neighborhood (with per-node hop distances) of every owned node is
//! *identical* in the shard and in the global graph for every
//! `h <= halo_hops` — the exactness invariant the sharded engine's
//! merge rule rests on (DESIGN.md §9).
//!
//! ## Local id order
//!
//! Local ids are assigned in ascending global-id order across the
//! whole member set (owned and halo interleaved). The remap is
//! therefore monotone: adjacency slices sorted by local id are sorted
//! by global id too, so a BFS from an owned node discovers (and a
//! backward pass accumulates) neighbors in exactly the global
//! traversal order. Floating-point sums inside one shard are
//! **bit-identical** to the single-graph run, not merely close.

use crate::csr::{CsrGraph, CsrView};
use crate::node::NodeId;
use crate::store::GraphStore;
use crate::traversal::EpochSet;

/// How global nodes are assigned to owning shards.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Shard `i` owns the `i`-th contiguous range of node ids (sizes
    /// differ by at most one). The right choice when ids carry
    /// locality (community-ordered datasets): halos stay small.
    Contiguous,
    /// Multiplicative hash of the node id. Owned counts balance well
    /// on any id distribution, but halos are large on graphs with id
    /// locality — the classic hash-partition trade-off.
    Hash,
    /// Greedy balance on *degree*: nodes are assigned in descending
    /// degree order to the shard with the least accumulated degree
    /// (ties to the lowest shard id). Balances adjacency work rather
    /// than node counts.
    DegreeBalanced,
}

impl PartitionStrategy {
    /// All strategies, in a stable order (benches and tests sweep
    /// this).
    pub const ALL: [PartitionStrategy; 3] = [
        PartitionStrategy::Contiguous,
        PartitionStrategy::Hash,
        PartitionStrategy::DegreeBalanced,
    ];

    /// Short name used in CLI flags, bench ids and reports.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::DegreeBalanced => "degree",
        }
    }
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PartitionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "contiguous" | "range" => Ok(PartitionStrategy::Contiguous),
            "hash" => Ok(PartitionStrategy::Hash),
            "degree" | "degree-balanced" => Ok(PartitionStrategy::DegreeBalanced),
            other => Err(format!(
                "unknown partition strategy `{other}` (contiguous|hash|degree)"
            )),
        }
    }
}

/// One shard: the induced subgraph over its members (owned + halo),
/// the local→global id map, and the ownership mask.
#[derive(Clone, Debug)]
pub struct Shard {
    graph: CsrGraph,
    /// `global_ids[local] = global`, ascending (the remap is monotone).
    global_ids: Vec<NodeId>,
    /// `owned[local]` — whether this shard owns the node (vs. halo).
    owned: Vec<bool>,
    owned_count: usize,
    /// Owned nodes with at least one neighbor owned by another shard.
    boundary_count: usize,
}

impl Shard {
    /// The shard's induced subgraph (owned + halo members).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Members of this shard (owned + halo).
    pub fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }

    /// Nodes this shard owns (is authoritative for).
    pub fn owned_count(&self) -> usize {
        self.owned_count
    }

    /// Halo (replicated, non-authoritative) members.
    pub fn halo_count(&self) -> usize {
        self.global_ids.len() - self.owned_count
    }

    /// Owned nodes adjacent to another shard's owned set.
    pub fn boundary_count(&self) -> usize {
        self.boundary_count
    }

    /// The ownership mask, indexed by local id — the candidate set the
    /// engine restricts its top-k to.
    pub fn owned_mask(&self) -> &[bool] {
        &self.owned
    }

    /// Whether the local node is owned (vs. halo).
    pub fn is_owned(&self, local: NodeId) -> bool {
        self.owned[local.index()]
    }

    /// Map a local id back to its global id.
    #[inline]
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.global_ids[local.index()]
    }

    /// Map a global id to this shard's local id, if the node is a
    /// member (binary search — the map is sorted).
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.global_ids
            .binary_search(&global)
            .ok()
            .map(NodeId::from_index)
    }

    /// The ascending local→global id map.
    pub fn global_ids(&self) -> &[NodeId] {
        &self.global_ids
    }
}

/// Where a global node lives: its owning shard and its local id there.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardLoc {
    /// Owning shard index.
    pub shard: usize,
    /// Local id within that shard.
    pub local: NodeId,
}

/// A graph split into shards with lossless global↔local remapping.
///
/// ```
/// use lona_graph::{partition, GraphBuilder, NodeId, PartitionStrategy};
///
/// let g = GraphBuilder::undirected()
///     .extend_edges((0..12).map(|i| (i, (i + 1) % 12)))
///     .build()
///     .unwrap();
/// let sharded = partition(&g, 3, PartitionStrategy::Contiguous, 2).unwrap();
/// assert_eq!(sharded.num_shards(), 3);
/// // Every node is owned by exactly one shard and round-trips.
/// for u in g.nodes() {
///     let loc = sharded.locate(u);
///     assert_eq!(sharded.shard(loc.shard).to_global(loc.local), u);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    shards: Vec<Shard>,
    /// `node_map[global]` = owning shard.
    node_map: Vec<u32>,
    halo_hops: u32,
    strategy: PartitionStrategy,
    num_global_nodes: usize,
    /// Global edges whose endpoints are owned by different shards.
    edge_cut: usize,
}

impl ShardedGraph {
    /// Number of shards (including any that own no nodes).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by shard id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// The halo depth the shards were built with. Queries are exact
    /// for any hop radius `h <= halo_hops`.
    pub fn halo_hops(&self) -> u32 {
        self.halo_hops
    }

    /// The strategy that assigned owners.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Node count of the original graph.
    pub fn num_global_nodes(&self) -> usize {
        self.num_global_nodes
    }

    /// The shard owning a global node.
    pub fn owner_of(&self, global: NodeId) -> usize {
        self.node_map[global.index()] as usize
    }

    /// The owning shard and local id of a global node.
    ///
    /// # Panics
    /// Panics if `global` is out of range.
    pub fn locate(&self, global: NodeId) -> ShardLoc {
        let shard = self.owner_of(global);
        let local = self.shards[shard]
            .to_local(global)
            .expect("owner shard must contain its node");
        ShardLoc { shard, local }
    }

    /// Global edges crossing shard ownership (the edge cut).
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// Total shard members divided by global nodes: 1.0 means no
    /// replication, S means every shard holds the whole graph.
    pub fn replication_factor(&self) -> f64 {
        if self.num_global_nodes == 0 {
            return 1.0;
        }
        let members: usize = self.shards.iter().map(Shard::num_nodes).sum();
        members as f64 / self.num_global_nodes as f64
    }
}

/// Fibonacci-multiplicative hash of a node id — deterministic and
/// platform-independent.
#[inline]
fn hash_owner(u: u32, num_shards: usize) -> u32 {
    let h = (u as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        >> 32;
    (h % num_shards as u64) as u32
}

/// Assign every node an owning shard under `strategy`.
fn assign_owners(g: CsrView<'_>, num_shards: usize, strategy: PartitionStrategy) -> Vec<u32> {
    let n = g.num_nodes();
    match strategy {
        PartitionStrategy::Contiguous => {
            // Balanced ranges: the first `n % S` shards own one extra.
            let base = n / num_shards;
            let extra = n % num_shards;
            let mut owners = Vec::with_capacity(n);
            for s in 0..num_shards {
                let len = base + usize::from(s < extra);
                owners.extend(std::iter::repeat_n(s as u32, len));
            }
            owners
        }
        PartitionStrategy::Hash => (0..n as u32).map(|u| hash_owner(u, num_shards)).collect(),
        PartitionStrategy::DegreeBalanced => {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(NodeId(u))), u));
            let mut load = vec![0u64; num_shards];
            let mut owners = vec![0u32; n];
            for u in order {
                // S is small; a linear scan beats heap bookkeeping.
                let target = (0..num_shards)
                    .min_by_key(|&s| (load[s], s))
                    .expect("at least one shard");
                owners[u as usize] = target as u32;
                // +1 keeps zero-degree nodes spreading round-robin.
                load[target] += g.degree(NodeId(u)) as u64 + 1;
            }
            owners
        }
    }
}

/// Split `g` into `num_shards` shards under `strategy`, materializing
/// a `halo_hops`-hop halo around every shard's owned set.
///
/// Queries at any hop radius `h <= halo_hops` evaluate owned nodes
/// exactly (see the module docs for the argument).
///
/// # Panics
/// Panics if `num_shards == 0`, `halo_hops == 0`, or `g` is directed
/// (the halo-completeness argument and the backward algorithms need
/// symmetric adjacency).
pub fn partition<G: GraphStore + ?Sized>(
    g: &G,
    num_shards: usize,
    strategy: PartitionStrategy,
    halo_hops: u32,
) -> crate::Result<ShardedGraph> {
    let g = g.csr();
    assert!(num_shards >= 1, "need at least one shard");
    assert!(halo_hops >= 1, "halo depth must be at least 1");
    assert!(
        !g.is_directed(),
        "partitioning requires an undirected graph (halo completeness needs symmetric adjacency)"
    );
    let n = g.num_nodes();
    let node_map = assign_owners(g, num_shards, strategy);

    // Group owned nodes per shard (ascending ids — the iteration
    // order below preserves it).
    let mut owned_by_shard: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for (u, &s) in node_map.iter().enumerate() {
        owned_by_shard[s as usize].push(u as u32);
    }

    // Scratch reused across shards: visited set for the halo BFS and
    // the global→local map for CSR construction.
    let mut visited = EpochSet::new(n);
    let mut to_local = vec![u32::MAX; n];
    let mut edge_cut = 0usize;

    let mut shards = Vec::with_capacity(num_shards);
    for owned_nodes in &owned_by_shard {
        // Multi-source BFS out to halo_hops collects the member set.
        visited.clear();
        let mut frontier: Vec<u32> = Vec::with_capacity(owned_nodes.len());
        let mut members: Vec<u32> = Vec::with_capacity(owned_nodes.len());
        for &u in owned_nodes {
            visited.insert(u);
            frontier.push(u);
            members.push(u);
        }
        let mut next: Vec<u32> = Vec::new();
        for _ in 0..halo_hops {
            if frontier.is_empty() {
                break;
            }
            next.clear();
            for &x in &frontier {
                for &v in g.neighbors(NodeId(x)) {
                    if visited.insert(v.0) {
                        members.push(v.0);
                        next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        members.sort_unstable();

        // Monotone global→local map for this shard.
        for (local, &m) in members.iter().enumerate() {
            to_local[m as usize] = local as u32;
        }

        // Build the induced CSR directly: the remap is monotone, so
        // per-node adjacency slices stay sorted and no re-sort is
        // needed; self-loops and weights carry over verbatim.
        let weighted = g.has_weights();
        let mut offsets = Vec::with_capacity(members.len() + 1);
        offsets.push(0u32);
        let mut targets: Vec<NodeId> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        let mut num_edges = 0usize;
        for &m in &members {
            let u = NodeId(m);
            for (v, w) in g.weighted_neighbors(u) {
                let local_v = to_local[v.index()];
                if local_v == u32::MAX {
                    continue;
                }
                targets.push(NodeId(local_v));
                if weighted {
                    weights.push(w);
                }
                // Undirected edges appear from both endpoints except
                // self-loops (stored once); count each logical edge
                // from its lower endpoint.
                if u <= v {
                    num_edges += 1;
                }
            }
            if targets.len() > u32::MAX as usize {
                return Err(crate::GraphError::TooManyEdges(targets.len()));
            }
            offsets.push(targets.len() as u32);
        }
        let graph = CsrGraph::from_parts(
            offsets,
            targets,
            weighted.then_some(weights),
            num_edges,
            false,
        );

        // Ownership mask + boundary bookkeeping (and the shard's
        // contribution to the edge cut, counted from the lower-owned
        // endpoint so each cut edge counts once).
        let shard_id = shards.len() as u32;
        let mut owned = vec![false; members.len()];
        let mut owned_count = 0usize;
        let mut boundary_count = 0usize;
        for &m in owned_nodes {
            let u = NodeId(m);
            owned[to_local[u.index()] as usize] = true;
            owned_count += 1;
            let mut is_boundary = false;
            for &v in g.neighbors(u) {
                if node_map[v.index()] != shard_id {
                    is_boundary = true;
                    // Count each cut edge once, from its lower
                    // endpoint (whose owning shard reaches here).
                    if u < v {
                        edge_cut += 1;
                    }
                }
            }
            if is_boundary {
                boundary_count += 1;
            }
        }

        // Reset the scratch map for the next shard.
        for &m in &members {
            to_local[m as usize] = u32::MAX;
        }

        shards.push(Shard {
            graph,
            global_ids: members.into_iter().map(NodeId).collect(),
            owned,
            owned_count,
            boundary_count,
        });
    }

    Ok(ShardedGraph {
        shards,
        node_map,
        halo_hops,
        strategy,
        num_global_nodes: n,
        edge_cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn ring(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n).map(|i| (i, (i + 1) % n)))
            .build()
            .unwrap()
    }

    fn check_invariants(g: &CsrGraph, sharded: &ShardedGraph, halo: u32) {
        // Every global node owned exactly once, and round-trips.
        let mut owned_total = 0usize;
        for shard in sharded.shards() {
            owned_total += shard.owned_count();
            assert_eq!(
                shard.owned_mask().iter().filter(|&&b| b).count(),
                shard.owned_count()
            );
            // Local ids ascend in global order.
            assert!(shard.global_ids().windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(owned_total, g.num_nodes());
        for u in g.nodes() {
            let loc = sharded.locate(u);
            let shard = sharded.shard(loc.shard);
            assert!(shard.is_owned(loc.local));
            assert_eq!(shard.to_global(loc.local), u);
            assert_eq!(shard.to_local(u), Some(loc.local));
        }
        // Halo completeness: the h-hop ball of every owned node is in
        // the member set, with all its edges among members preserved.
        for (si, shard) in sharded.shards().iter().enumerate() {
            for local in shard.graph().nodes() {
                if !shard.is_owned(local) {
                    continue;
                }
                let global = shard.to_global(local);
                let mut ball = vec![global];
                let mut frontier = vec![global];
                let mut seen = std::collections::HashSet::from([global]);
                for _ in 0..halo {
                    let mut nf = Vec::new();
                    for &x in &frontier {
                        for &v in g.neighbors(x) {
                            if seen.insert(v) {
                                ball.push(v);
                                nf.push(v);
                            }
                        }
                    }
                    frontier = nf;
                }
                for b in ball {
                    assert!(
                        shard.to_local(b).is_some(),
                        "shard {si}: ball node {b:?} of owned {global:?} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn contiguous_balances_and_preserves_invariants() {
        let g = ring(23);
        for shards in [1, 2, 4, 8] {
            let sharded = partition(&g, shards, PartitionStrategy::Contiguous, 2).unwrap();
            assert_eq!(sharded.num_shards(), shards);
            check_invariants(&g, &sharded, 2);
            let counts: Vec<usize> = sharded.shards().iter().map(Shard::owned_count).collect();
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn hash_and_degree_preserve_invariants() {
        let g = ring(30);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::DegreeBalanced] {
            for shards in [1, 3, 5] {
                let sharded = partition(&g, shards, strategy, 2).unwrap();
                check_invariants(&g, &sharded, 2);
            }
        }
    }

    #[test]
    fn single_shard_is_the_whole_graph() {
        let g = ring(12);
        let sharded = partition(&g, 1, PartitionStrategy::Hash, 2).unwrap();
        let s = sharded.shard(0);
        assert_eq!(s.num_nodes(), 12);
        assert_eq!(s.owned_count(), 12);
        assert_eq!(s.halo_count(), 0);
        assert_eq!(s.boundary_count(), 0);
        assert_eq!(sharded.edge_cut(), 0);
        assert!((sharded.replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(s.graph().num_edges(), g.num_edges());
        // Identity remap.
        for u in g.nodes() {
            assert_eq!(s.to_global(u), u);
        }
    }

    #[test]
    fn ring_contiguous_halo_is_the_rim() {
        // 2 shards on a 20-ring with halo 2: each shard owns 10 nodes
        // and pulls in 2 rim nodes per cut end.
        let g = ring(20);
        let sharded = partition(&g, 2, PartitionStrategy::Contiguous, 2).unwrap();
        for shard in sharded.shards() {
            assert_eq!(shard.owned_count(), 10);
            assert_eq!(shard.halo_count(), 4);
        }
        assert_eq!(sharded.edge_cut(), 2);
        // Boundary nodes: the two ends of each contiguous range.
        assert_eq!(sharded.shard(0).boundary_count(), 2);
    }

    #[test]
    fn degree_balanced_spreads_hubs() {
        // Star: hub 0 plus 12 leaves. Degree balance puts the hub
        // alone-ish; every shard still owns someone.
        let g = GraphBuilder::undirected()
            .extend_edges((1..=12).map(|i| (0, i)))
            .build()
            .unwrap();
        let sharded = partition(&g, 3, PartitionStrategy::DegreeBalanced, 1).unwrap();
        check_invariants(&g, &sharded, 1);
        for shard in sharded.shards() {
            assert!(shard.owned_count() > 0);
        }
        // The hub's owner carries far less leaf load than the rest.
        let hub_shard = sharded.owner_of(NodeId(0));
        let hub_owned = sharded.shard(hub_shard).owned_count();
        assert!(hub_owned < 12 / 3 + 2, "hub shard overloaded: {hub_owned}");
    }

    #[test]
    fn more_shards_than_nodes_leaves_empties() {
        let g = ring(3);
        let sharded = partition(&g, 8, PartitionStrategy::Contiguous, 2).unwrap();
        assert_eq!(sharded.num_shards(), 8);
        let owned: usize = sharded.shards().iter().map(Shard::owned_count).sum();
        assert_eq!(owned, 3);
        // Empty shards have empty graphs and empty maps.
        for shard in sharded.shards().iter().filter(|s| s.owned_count() == 0) {
            assert_eq!(shard.num_nodes(), 0);
            assert_eq!(shard.graph().num_nodes(), 0);
        }
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let sharded = partition(&g, 4, PartitionStrategy::Hash, 2).unwrap();
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.replication_factor(), 1.0);
    }

    #[test]
    fn weights_carry_into_shards() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 2.5)
            .add_weighted_edge(1, 2, 0.5)
            .add_weighted_edge(2, 3, 4.0)
            .build()
            .unwrap();
        let sharded = partition(&g, 2, PartitionStrategy::Contiguous, 1).unwrap();
        let s0 = sharded.shard(0);
        assert!(s0.graph().has_weights());
        let l0 = s0.to_local(NodeId(0)).unwrap();
        let l1 = s0.to_local(NodeId(1)).unwrap();
        assert_eq!(s0.graph().edge_weight(l0, l1), Some(2.5));
    }

    #[test]
    fn strategy_parsing_and_names() {
        for s in PartitionStrategy::ALL {
            assert_eq!(s.name().parse::<PartitionStrategy>().unwrap(), s);
        }
        assert_eq!(
            "degree-balanced".parse::<PartitionStrategy>().unwrap(),
            PartitionStrategy::DegreeBalanced
        );
        assert!("metis".parse::<PartitionStrategy>().is_err());
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_rejected() {
        let g = GraphBuilder::directed().add_edge(0, 1).build().unwrap();
        let _ = partition(&g, 2, PartitionStrategy::Contiguous, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let g = ring(4);
        let _ = partition(&g, 0, PartitionStrategy::Contiguous, 1);
    }
}
