//! Compact binary graph snapshots.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"LONAGRF1"
//! flags   u32      bit 0 = directed, bit 1 = weighted
//! nodes   u64
//! edges   u64      logical edge count
//! entries u64      adjacency entry count
//! offsets [u32; nodes + 1]
//! targets [u32; entries]
//! weights [f32; entries]   (only when weighted)
//! ```
//!
//! The generated benchmark datasets are cached in this format so a
//! bench run does not pay graph generation on every invocation.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

const MAGIC: &[u8; 8] = b"LONAGRF1";
const FLAG_DIRECTED: u32 = 1;
const FLAG_WEIGHTED: u32 = 2;

/// Serialize a graph snapshot to a writer.
pub fn write_snapshot<W: Write>(g: &CsrGraph, mut writer: W) -> Result<()> {
    let (offsets, targets, weights) = g.raw_parts();
    let mut flags = 0u32;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if weights.is_some() {
        flags |= FLAG_WEIGHTED;
    }

    let mut header = BytesMut::with_capacity(8 + 4 + 24);
    header.put_slice(MAGIC);
    header.put_u32_le(flags);
    header.put_u64_le(g.num_nodes() as u64);
    header.put_u64_le(g.num_edges() as u64);
    header.put_u64_le(targets.len() as u64);
    writer.write_all(&header)?;

    // Bulk-encode the arrays through a reusable chunk buffer rather
    // than one write per integer.
    let mut chunk = BytesMut::with_capacity(1 << 16);
    for &o in offsets {
        chunk.put_u32_le(o);
        if chunk.len() >= (1 << 16) {
            writer.write_all(&chunk)?;
            chunk.clear();
        }
    }
    for &t in targets {
        chunk.put_u32_le(t.0);
        if chunk.len() >= (1 << 16) {
            writer.write_all(&chunk)?;
            chunk.clear();
        }
    }
    if let Some(ws) = weights {
        for &w in ws {
            chunk.put_f32_le(w);
            if chunk.len() >= (1 << 16) {
                writer.write_all(&chunk)?;
                chunk.clear();
            }
        }
    }
    writer.write_all(&chunk)?;
    Ok(())
}

/// Deserialize a graph snapshot from a reader.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<CsrGraph> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);

    if buf.remaining() < 8 + 4 + 24 {
        return Err(GraphError::BadSnapshot("truncated header".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::BadSnapshot(format!("bad magic {magic:?}")));
    }
    let flags = buf.get_u32_le();
    let nodes = buf.get_u64_le() as usize;
    let edges = buf.get_u64_le() as usize;
    let entries = buf.get_u64_le() as usize;

    let weighted = flags & FLAG_WEIGHTED != 0;
    // Checked arithmetic: corrupted counts must not overflow into a
    // bogus-but-matching length (or a debug panic).
    let need = nodes
        .checked_add(1)
        .and_then(|x| x.checked_add(entries))
        .and_then(|x| x.checked_mul(4))
        .and_then(|x| x.checked_add(if weighted { entries.checked_mul(4)? } else { 0 }))
        .ok_or_else(|| GraphError::BadSnapshot("count fields overflow".into()))?;
    if buf.remaining() != need {
        return Err(GraphError::BadSnapshot(format!(
            "body length {} != expected {need}",
            buf.remaining()
        )));
    }

    let mut offsets = Vec::with_capacity(nodes + 1);
    for _ in 0..=nodes {
        offsets.push(buf.get_u32_le());
    }
    if offsets[0] != 0 || *offsets.last().unwrap() as usize != entries {
        return Err(GraphError::BadSnapshot("inconsistent offsets".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::BadSnapshot("offsets not monotone".into()));
    }

    let mut targets = Vec::with_capacity(entries);
    for _ in 0..entries {
        let t = buf.get_u32_le();
        if t as usize >= nodes {
            return Err(GraphError::BadSnapshot(format!("target {t} out of range")));
        }
        targets.push(NodeId(t));
    }
    let weights = if weighted {
        let mut w = Vec::with_capacity(entries);
        for _ in 0..entries {
            w.push(buf.get_f32_le());
        }
        Some(w)
    } else {
        None
    };

    Ok(CsrGraph::from_parts(
        offsets,
        targets,
        weights,
        edges,
        flags & FLAG_DIRECTED != 0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn round_trip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(&buf[..]).unwrap()
    }

    #[test]
    fn unweighted_round_trip() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap();
        let g2 = round_trip(&g);
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(!g2.is_directed());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn weighted_directed_round_trip() {
        let g = GraphBuilder::directed()
            .add_weighted_edge(0, 1, 0.25)
            .add_weighted_edge(2, 0, -1.5)
            .build()
            .unwrap();
        let g2 = round_trip(&g);
        assert!(g2.is_directed());
        assert_eq!(g2.edge_weight(NodeId(0), NodeId(1)), Some(0.25));
        assert_eq!(g2.edge_weight(NodeId(2), NodeId(0)), Some(-1.5));
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let g2 = round_trip(&g);
        assert_eq!(g2.num_nodes(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_snapshot(
            &GraphBuilder::undirected().add_edge(0, 1).build().unwrap(),
            &mut buf,
        )
        .unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_snapshot(&buf[..]),
            Err(GraphError::BadSnapshot(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_snapshot(
            &GraphBuilder::undirected().add_edge(0, 1).build().unwrap(),
            &mut buf,
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_snapshot(&buf[..]),
            Err(GraphError::BadSnapshot(_))
        ));
    }

    #[test]
    fn out_of_range_target_rejected() {
        // Hand-craft: 1 node, 1 entry pointing at node 5.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // nodes
        buf.extend_from_slice(&1u64.to_le_bytes()); // edges
        buf.extend_from_slice(&1u64.to_le_bytes()); // entries
        buf.extend_from_slice(&0u32.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&1u32.to_le_bytes()); // offsets[1]
        buf.extend_from_slice(&5u32.to_le_bytes()); // bogus target
        assert!(matches!(
            read_snapshot(&buf[..]),
            Err(GraphError::BadSnapshot(_))
        ));
    }
}
