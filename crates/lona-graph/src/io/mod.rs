//! Graph serialization: whitespace edge-list text and a compact
//! binary snapshot.

mod binary;
mod edgelist;

pub use binary::{read_snapshot, write_snapshot};
pub use edgelist::{read_edge_list, write_edge_list, EdgeListOptions};
