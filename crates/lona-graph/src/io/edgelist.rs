//! Whitespace-separated edge-list text format.
//!
//! The format matches common network-repository dumps (including the
//! cond-mat / NBER files the paper used): one `u v [w]` triple per
//! line, `#` or `%` comment lines, blank lines ignored.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::Result;

/// Options controlling edge-list parsing.
#[derive(Clone, Debug, Default)]
pub struct EdgeListOptions {
    /// Build a directed graph.
    pub directed: bool,
    /// Node count override (otherwise inferred).
    pub num_nodes: Option<u32>,
}

/// Parse an edge list from any buffered reader.
///
/// A third column, when present, is parsed as an `f32` edge weight;
/// mixing weighted and unweighted lines is allowed (missing weights
/// default to 1.0, and the graph is weighted if any line has a weight).
pub fn read_edge_list<R: BufRead>(reader: R, opts: &EdgeListOptions) -> Result<CsrGraph> {
    let mut builder = if opts.directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    if let Some(n) = opts.num_nodes {
        builder = builder.with_num_nodes(n);
    }

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                msg: format!("missing {what}"),
            })?;
            tok.parse::<u32>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                msg: format!("bad {what} `{tok}`: {e}"),
            })
        };
        let u = parse_u32(it.next(), "source id")?;
        let v = parse_u32(it.next(), "target id")?;
        match it.next() {
            None => builder.push_edge(u, v),
            Some(tok) => {
                let w: f32 = tok.parse().map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    msg: format!("bad weight `{tok}`: {e}"),
                })?;
                builder.push_weighted_edge(u, v, w);
            }
        }
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                msg: "too many columns (expected `u v [w]`)".into(),
            });
        }
    }
    builder.build()
}

/// Write a graph as an edge list (unique edges, weights included when
/// present).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# lona edge list: {} nodes, {} edges, {}",
        g.num_nodes(),
        g.num_edges(),
        if g.is_directed() {
            "directed"
        } else {
            "undirected"
        }
    )?;
    if g.has_weights() {
        for (u, v, w) in g.edges() {
            writeln!(writer, "{u} {v} {w}")?;
        }
    } else {
        for (u, v, _) in g.edges() {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn parse_simple() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = read_edge_list(text.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parse_weighted() {
        let text = "0 1 0.5\n1 2 2.0\n";
        let g = read_edge_list(text.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert!(g.has_weights());
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(0.5));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), &EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn too_many_columns_rejected() {
        let text = "0 1 2.0 extra\n";
        assert!(read_edge_list(text.as_bytes(), &EdgeListOptions::default()).is_err());
    }

    #[test]
    fn missing_target_rejected() {
        let text = "7\n";
        assert!(read_edge_list(text.as_bytes(), &EdgeListOptions::default()).is_err());
    }

    #[test]
    fn round_trip_unweighted() {
        let g = crate::GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (0, 3)])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], &EdgeListOptions::default()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }

    #[test]
    fn round_trip_weighted_directed() {
        let g = crate::GraphBuilder::directed()
            .add_weighted_edge(0, 1, 1.5)
            .add_weighted_edge(1, 0, 2.5)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(
            &buf[..],
            &EdgeListOptions {
                directed: true,
                num_nodes: None,
            },
        )
        .unwrap();
        assert_eq!(g2.edge_weight(NodeId(0), NodeId(1)), Some(1.5));
        assert_eq!(g2.edge_weight(NodeId(1), NodeId(0)), Some(2.5));
    }
}
