//! Compressed-sparse-row graph storage.
//!
//! Two types share one layout:
//!
//! * [`CsrGraph`] owns its arrays (the builder/parser output);
//! * [`CsrView`] borrows them — a `Copy` bundle of slices that every
//!   traversal loop takes by value, so in-RAM and memory-mapped
//!   backends compile to the same monomorphic inner loops.
//!
//! [`CsrGraph`] methods all delegate to its view; any type that can
//! produce a [`CsrView`] (see [`crate::GraphStore`]) gets the whole
//! read API for free.

use crate::node::NodeId;

/// A static graph in compressed-sparse-row (CSR) form.
///
/// Neighbors of node `u` occupy the contiguous slice
/// `targets[offsets[u] .. offsets[u + 1]]`, sorted by target id. For
/// undirected graphs every edge is stored in both endpoint lists, so
/// `degree(u)` is the usual undirected degree. Optional edge weights
/// are stored in a parallel array.
///
/// This layout gives the two properties every LONA inner loop needs:
/// neighbor access is a bounds-checked slice (no hashing, no pointer
/// chasing) and iteration over a neighborhood is a linear scan over
/// adjacent memory.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `num_nodes + 1` offsets into `targets`.
    offsets: Vec<u32>,
    /// Flattened, per-source-sorted adjacency lists.
    targets: Vec<NodeId>,
    /// Optional weights parallel to `targets`.
    weights: Option<Vec<f32>>,
    /// Logical edge count (undirected edges counted once).
    num_edges: usize,
    /// Whether the graph was built as directed.
    directed: bool,
}

/// A borrowed CSR graph: the slice bundle every traversal loop reads.
///
/// `Copy`, 5 words wide — pass it by value. Produced by
/// [`CsrGraph::view`] over owned arrays or by the memory-mapped
/// backend over file-backed sections; the read API is identical and
/// the compiled code is the same either way.
#[derive(Copy, Clone, Debug)]
pub struct CsrView<'a> {
    offsets: &'a [u32],
    targets: &'a [NodeId],
    weights: Option<&'a [f32]>,
    num_edges: usize,
    directed: bool,
}

impl<'a> CsrView<'a> {
    /// Assemble a view from raw slices. The caller guarantees the CSR
    /// invariants (non-empty monotone offsets ending at
    /// `targets.len()`, in-range sorted targets, weights parallel to
    /// targets); both in-crate constructors validate eagerly.
    pub(crate) fn from_raw(
        offsets: &'a [u32],
        targets: &'a [NodeId],
        weights: Option<&'a [f32]>,
        num_edges: usize,
        directed: bool,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        if let Some(w) = weights {
            debug_assert_eq!(w.len(), targets.len());
        }
        CsrView {
            offsets,
            targets,
            weights,
            num_edges,
            directed,
        }
    }

    /// Number of nodes.
    #[inline(always)]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges (an undirected edge counts once).
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored adjacency entries (`2 * num_edges` for
    /// undirected graphs without self-loops).
    #[inline(always)]
    pub fn num_adjacency_entries(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph was built as directed.
    #[inline(always)]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether edge weights are stored.
    #[inline(always)]
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `u` (undirected degree for undirected graphs).
    #[inline(always)]
    pub fn degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted neighbor slice of `u`.
    #[inline(always)]
    pub fn neighbors(&self, u: NodeId) -> &'a [NodeId] {
        let i = u.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The weight slice parallel to [`CsrView::neighbors`], if the
    /// graph carries weights.
    #[inline(always)]
    pub fn neighbor_weights(&self, u: NodeId) -> Option<&'a [f32]> {
        let w = self.weights?;
        let i = u.index();
        Some(&w[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Iterate `(neighbor, weight)` pairs of `u`; weight defaults to
    /// `1.0` on unweighted graphs.
    pub fn weighted_neighbors(&self, u: NodeId) -> NeighborIter<'a> {
        let i = u.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        NeighborIter {
            targets: &self.targets[lo..hi],
            weights: self.weights.map(|w| &w[lo..hi]),
            pos: 0,
        }
    }

    /// Whether the edge `(u, v)` exists (binary search on the sorted
    /// neighbor slice — O(log degree)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The global adjacency-array range holding `u`'s neighbors.
    ///
    /// Per-edge side tables (like LONA's differential index) are laid
    /// out parallel to the adjacency array; this range addresses the
    /// slice belonging to `u`.
    #[inline(always)]
    pub fn adjacency_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let i = u.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Global adjacency-array position of the entry `u -> v`, if the
    /// edge exists.
    pub fn adjacency_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let pos = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.offsets[u.index()] as usize + pos)
    }

    /// Weight of edge `(u, v)` if present; `1.0` on unweighted graphs.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        let pos = self.neighbors(u).binary_search(&v).ok()?;
        Some(match self.weights {
            Some(w) => w[self.offsets[u.index()] as usize + pos],
            None => 1.0,
        })
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over unique edges. For undirected graphs each edge is
    /// yielded once with `u <= v`; for directed graphs every stored
    /// `(source, target)` arc is yielded.
    pub fn edges(&self) -> EdgeIter<'a> {
        EdgeIter {
            g: *self,
            u: 0,
            pos: 0,
        }
    }

    /// Sum of all degrees divided by node count.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.num_nodes() as f64
    }

    /// Approximate resident memory of the structure, in bytes (for
    /// mapped backends this is the mapped span, resident or not).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets)
            + std::mem::size_of_val(self.targets)
            + self.weights.map_or(0, std::mem::size_of_val)
    }

    /// The raw offsets array (`num_nodes + 1` entries).
    #[inline(always)]
    pub fn offsets(&self) -> &'a [u32] {
        self.offsets
    }

    /// The raw flattened adjacency array.
    #[inline(always)]
    pub fn targets(&self) -> &'a [NodeId] {
        self.targets
    }

    /// The raw weight array parallel to [`CsrView::targets`], if any.
    #[inline(always)]
    pub fn weights(&self) -> Option<&'a [f32]> {
        self.weights
    }
}

impl CsrGraph {
    /// Assemble a CSR graph from raw parts. Used by [`crate::GraphBuilder`]
    /// and the binary snapshot loader; invariants are checked with
    /// debug assertions (the callers validate eagerly).
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        targets: Vec<NodeId>,
        weights: Option<Vec<f32>>,
        num_edges: usize,
        directed: bool,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        if let Some(w) = &weights {
            debug_assert_eq!(w.len(), targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            weights,
            num_edges,
            directed,
        }
    }

    /// Borrow the graph as a [`CsrView`] — the form every engine loop
    /// consumes.
    #[inline(always)]
    pub fn view(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.offsets,
            targets: &self.targets,
            weights: self.weights.as_deref(),
            num_edges: self.num_edges,
            directed: self.directed,
        }
    }

    /// Number of nodes.
    #[inline(always)]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges (an undirected edge counts once).
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored adjacency entries (`2 * num_edges` for
    /// undirected graphs without self-loops).
    #[inline(always)]
    pub fn num_adjacency_entries(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph was built as directed.
    #[inline(always)]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether edge weights are stored.
    #[inline(always)]
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `u` (undirected degree for undirected graphs).
    #[inline(always)]
    pub fn degree(&self, u: NodeId) -> usize {
        self.view().degree(u)
    }

    /// The sorted neighbor slice of `u`.
    #[inline(always)]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.view().neighbors(u)
    }

    /// The weight slice parallel to [`CsrGraph::neighbors`], if the
    /// graph carries weights.
    #[inline(always)]
    pub fn neighbor_weights(&self, u: NodeId) -> Option<&[f32]> {
        self.view().neighbor_weights(u)
    }

    /// Iterate `(neighbor, weight)` pairs of `u`; weight defaults to
    /// `1.0` on unweighted graphs.
    pub fn weighted_neighbors(&self, u: NodeId) -> NeighborIter<'_> {
        self.view().weighted_neighbors(u)
    }

    /// Whether the edge `(u, v)` exists (binary search on the sorted
    /// neighbor slice — O(log degree)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.view().has_edge(u, v)
    }

    /// The global adjacency-array range holding `u`'s neighbors.
    ///
    /// Per-edge side tables (like LONA's differential index) are laid
    /// out parallel to the adjacency array; this range addresses the
    /// slice belonging to `u`.
    #[inline(always)]
    pub fn adjacency_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.view().adjacency_range(u)
    }

    /// Global adjacency-array position of the entry `u -> v`, if the
    /// edge exists.
    pub fn adjacency_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.view().adjacency_index(u, v)
    }

    /// Weight of edge `(u, v)` if present; `1.0` on unweighted graphs.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        self.view().edge_weight(u, v)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.view().nodes()
    }

    /// Iterator over unique edges. For undirected graphs each edge is
    /// yielded once with `u <= v`; for directed graphs every stored
    /// `(source, target)` arc is yielded.
    pub fn edges(&self) -> EdgeIter<'_> {
        self.view().edges()
    }

    /// Sum of all degrees divided by node count.
    pub fn mean_degree(&self) -> f64 {
        self.view().mean_degree()
    }

    /// Approximate resident memory of the structure, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.view().memory_bytes()
    }

    /// Internal accessor for snapshot serialization.
    pub(crate) fn raw_parts(&self) -> (&[u32], &[NodeId], Option<&[f32]>) {
        (&self.offsets, &self.targets, self.weights.as_deref())
    }
}

/// Iterator over `(neighbor, weight)` pairs of one node.
pub struct NeighborIter<'a> {
    targets: &'a [NodeId],
    weights: Option<&'a [f32]>,
    pos: usize,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = (NodeId, f32);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.targets.len() {
            return None;
        }
        let v = self.targets[self.pos];
        let w = self.weights.map_or(1.0, |w| w[self.pos]);
        self.pos += 1;
        Some((v, w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Iterator over unique edges of a CSR graph (either backend).
pub struct EdgeIter<'a> {
    g: CsrView<'a>,
    u: u32,
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (NodeId, NodeId, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.g.num_nodes() as u32;
        while self.u < n {
            let u = NodeId(self.u);
            let nbrs = self.g.neighbors(u);
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                let idx = self.g.offsets[u.index()] as usize + self.pos;
                self.pos += 1;
                // For undirected graphs, emit each edge from its lower
                // endpoint only (self-loops are emitted once).
                if self.g.directed || u <= v {
                    let w = self.g.weights.map_or(1.0, |w| w[idx]);
                    return Some((u, v, w));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle, plus 2-3 tail.
        GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_adjacency_entries(), 8);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.degree(NodeId(3)), 1);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_degree_of_empty_graph_is_zero_not_nan() {
        // 0/0 would be NaN; the empty graph must pin to 0.0 on both
        // the owned graph and its borrowed view.
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.view().mean_degree(), 0.0);
        // Edgeless-but-nonempty exercises the same ratio without the
        // guard: still finite, still zero.
        let g = GraphBuilder::undirected()
            .with_num_nodes(3)
            .build()
            .unwrap();
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.view().mean_degree().is_finite());
    }

    #[test]
    fn view_matches_owner() {
        let g = triangle_plus_tail();
        let v = g.view();
        assert_eq!(v.num_nodes(), g.num_nodes());
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(v.num_adjacency_entries(), g.num_adjacency_entries());
        assert_eq!(v.is_directed(), g.is_directed());
        assert_eq!(v.neighbors(NodeId(2)), g.neighbors(NodeId(2)));
        assert_eq!(v.adjacency_range(NodeId(1)), g.adjacency_range(NodeId(1)));
        assert_eq!(v.offsets().len(), g.num_nodes() + 1);
        assert_eq!(v.targets().len(), g.num_adjacency_entries());
        // Copy semantics: a view can be duplicated freely.
        let v2 = v;
        assert_eq!(v2.degree(NodeId(2)), v.degree(NodeId(2)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted at {u:?}");
        }
    }

    #[test]
    fn has_edge_is_symmetric_for_undirected() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn edge_iter_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().map(|(u, v, _)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn directed_edges_kept_as_arcs() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.degree(NodeId(2)), 0);
        let arcs: Vec<_> = g.edges().map(|(u, v, _)| (u.0, v.0)).collect();
        assert_eq!(arcs, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn weighted_neighbors_default_weight_is_one() {
        let g = triangle_plus_tail();
        let pairs: Vec<_> = g.weighted_neighbors(NodeId(2)).collect();
        assert_eq!(
            pairs,
            vec![(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(3), 1.0)]
        );
        assert_eq!(g.edge_weight(NodeId(2), NodeId(3)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn weights_follow_sorted_targets() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 2, 2.5)
            .add_weighted_edge(0, 1, 0.5)
            .build()
            .unwrap();
        assert!(g.has_weights());
        assert_eq!(g.neighbor_weights(NodeId(0)), Some(&[0.5, 2.5][..]));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), Some(2.5));
        assert_eq!(g.view().weights().map(|w| w.len()), Some(4));
    }

    #[test]
    fn memory_accounting_nonzero() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() >= 8 * 4 + 5 * 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(5)
            .add_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.neighbors(NodeId(4)).is_empty());
        assert_eq!(g.degree(NodeId(4)), 0);
    }
}
