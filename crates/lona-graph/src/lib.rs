//! # lona-graph
//!
//! In-memory graph substrate for the LONA top-k neighborhood aggregation
//! framework (Yan, He, Zhu, Han — *Top-K Aggregation Queries over Large
//! Networks*, ICDE 2010).
//!
//! The paper assumes "memory-resident large networks, as having them on
//! disk would not be practical in terms of graph traversal". This crate
//! provides that substrate:
//!
//! * [`CsrGraph`] — a compressed-sparse-row adjacency structure with
//!   `u32` node ids, optional edge weights, and O(1) neighbor slices.
//! * [`GraphBuilder`] — safe construction from edge lists with
//!   deduplication, self-loop policy, and undirected symmetrization.
//! * [`traversal`] — epoch-stamped visited sets and reusable h-hop BFS
//!   collectors; these are the inner loops of every LONA algorithm.
//! * [`algo`] — connected components, degree statistics, triangle
//!   counting and distance sampling used to characterize datasets.
//! * [`io`] — whitespace edge-list text format and a compact binary
//!   snapshot format.
//! * [`view`] — induced subgraphs.
//! * [`mod@partition`] — edge-cut sharding with halo replication, the
//!   storage layer of the scatter-gather engine.
//! * [`mod@order`] — cache-locality node renumbering (degree/BFS
//!   orders applied through a lossless [`Permutation`]).
//! * [`OverlayGraph`] — sorted insert/tombstone logs plus a
//!   score-override map layered over an immutable base, so a running
//!   engine can apply [`GraphDelta`] batches without a rebuild.
//! * [`GraphStore`] / [`mapped`] — the storage abstraction: every
//!   engine loop reads through a [`CsrView`] slice bundle, provided
//!   either by the in-RAM [`CsrGraph`] or by [`CsrGraphMmap`] over a
//!   read-only memory map of a compiled file (zero-copy startup).
//!
//! ## Quick example
//!
//! ```
//! use lona_graph::{GraphBuilder, NodeId};
//!
//! let g = GraphBuilder::undirected()
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(2, 0)
//!     .build()
//!     .unwrap();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(NodeId(0)), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
mod builder;
mod csr;
mod error;
pub mod io;
pub mod mapped;
mod node;
pub mod order;
mod overlay;
pub mod partition;
mod store;
pub mod traversal;
pub mod view;

pub use builder::{GraphBuilder, SelfLoopPolicy};
pub use csr::{CsrGraph, CsrView, EdgeIter, NeighborIter};
pub use error::GraphError;
pub use mapped::{CsrGraphMmap, MapSlice, Pod};
pub use node::NodeId;
pub use order::{reorder, NodeOrder, Permutation};
pub use overlay::{AppliedDelta, GraphDelta, OverlayGraph};
pub use partition::{partition, PartitionStrategy, Shard, ShardLoc, ShardedGraph};
pub use store::GraphStore;

// The mapped backend's buffer type, re-exported so downstream crates
// (the compiled-file loader) need no direct memmap2 dependency.
pub use memmap2::Mmap;

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
