//! Memory-mapped CSR storage: typed views over a shared byte buffer.
//!
//! [`MapSlice`] is the unit of zero-copy access: a `(buffer, offset,
//! length)` triple that views part of an [`Mmap`] as a `&[T]` for a
//! fixed-layout element type. Construction is where all safety lives —
//! bounds and alignment are checked against the buffer *before* any
//! slice is formed, and the set of viewable types is sealed to
//! little-endian fixed-width primitives whose every bit pattern is a
//! valid value. After that, reads are plain slice indexing.
//!
//! [`CsrGraphMmap`] assembles such slices into a full CSR graph and
//! validates the structural invariants the traversal loops rely on
//! (monotone offsets, in-range sorted targets) once, at load time.

use std::sync::Arc;

use memmap2::Mmap;

use crate::csr::CsrView;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::store::GraphStore;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for crate::node::NodeId {}
}

/// Element types that may be viewed directly over mapped bytes.
///
/// Sealed: only fixed-width primitives (and `repr(transparent)`
/// wrappers of them) for which **every** bit pattern is a valid value
/// qualify, so no byte sequence in a hostile file can construct an
/// invalid instance. Multi-byte values are read in native byte order;
/// the compiled format is little-endian and every supported target of
/// this workspace is too (a big-endian port would add explicit
/// byte-swapping at load).
pub trait Pod: sealed::Sealed + Copy + 'static {}

impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f32 {}
impl Pod for f64 {}
// Safe per `NodeId`'s repr(transparent) layout guarantee.
impl Pod for NodeId {}

/// A typed view over a range of a shared [`Mmap`].
///
/// Holds the buffer by `Arc`, so clones are cheap and the mapping
/// stays alive as long as any view does. No raw pointer is stored —
/// the slice is re-derived from `(buffer, byte_offset, len)` on each
/// access, which keeps the type automatically `Send + Sync`.
#[derive(Clone)]
pub struct MapSlice<T: Pod> {
    buf: Arc<Mmap>,
    byte_offset: usize,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> MapSlice<T> {
    /// View `len` elements of `T` starting at `byte_offset` in `buf`.
    ///
    /// Rejects (never panics) when the range overflows, exceeds the
    /// buffer, or is misaligned for `T`. The buffer's base address is
    /// at least 8-byte aligned on both `Mmap` backings, so checking
    /// the offset alone settles alignment for every supported `T`.
    pub fn new(buf: Arc<Mmap>, byte_offset: usize, len: usize) -> Result<Self, GraphError> {
        let size = std::mem::size_of::<T>();
        debug_assert!(std::mem::align_of::<T>() <= 8);
        debug_assert_eq!(buf.as_ptr() as usize % 8, 0);
        let byte_len = len
            .checked_mul(size)
            .ok_or_else(|| GraphError::BadSnapshot("section length overflows".into()))?;
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or_else(|| GraphError::BadSnapshot("section range overflows".into()))?;
        if end > buf.len() {
            return Err(GraphError::BadSnapshot(format!(
                "section [{byte_offset}, {end}) exceeds file length {}",
                buf.len()
            )));
        }
        if !byte_offset.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(GraphError::BadSnapshot(format!(
                "section offset {byte_offset} misaligned for element size {size}"
            )));
        }
        Ok(MapSlice {
            buf,
            byte_offset,
            len,
            _marker: std::marker::PhantomData,
        })
    }

    /// The viewed elements.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        // Safe: the constructor proved `byte_offset .. byte_offset +
        // len * size_of::<T>()` lies inside the buffer and is aligned
        // for T, the buffer is immutable and outlives `self` (Arc),
        // and T is Pod so any bytes are a valid value.
        unsafe {
            std::slice::from_raw_parts(
                self.buf.as_ptr().add(self.byte_offset) as *const T,
                self.len,
            )
        }
    }

    /// Number of viewed elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for MapSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapSlice")
            .field("byte_offset", &self.byte_offset)
            .field("len", &self.len)
            .finish()
    }
}

/// A CSR graph whose arrays live in a read-only memory map.
///
/// Construction via [`CsrGraphMmap::from_sections`] validates the full
/// CSR structure once; afterwards [`GraphStore::csr`] hands out the
/// same [`CsrView`] the in-RAM graph does, so every algorithm runs
/// unchanged — and bit-identically — over either backend. Clones share
/// the underlying mapping.
#[derive(Clone, Debug)]
pub struct CsrGraphMmap {
    offsets: MapSlice<u32>,
    targets: MapSlice<NodeId>,
    weights: Option<MapSlice<f32>>,
    /// Reverse-CSR arrays (incoming adjacency), present for directed
    /// graphs when the compiled file carries them.
    reverse: Option<(MapSlice<u32>, MapSlice<NodeId>)>,
    num_edges: usize,
    directed: bool,
}

/// Check one offsets/targets array pair for the CSR invariants:
/// non-empty offsets starting at 0, monotone and bounded by the
/// adjacency length, ending exactly at it; targets in range and
/// strictly sorted per row. Returns the number of self-loop entries
/// (target == own row), which the caller cross-checks against the
/// declared edge count.
fn validate_csr_arrays(
    what: &str,
    offsets: &[u32],
    targets: &[NodeId],
    num_nodes: Option<usize>,
) -> Result<usize, GraphError> {
    let bad = |msg: String| Err(GraphError::BadSnapshot(format!("{what}: {msg}")));
    if offsets.is_empty() {
        return bad("empty offsets array".into());
    }
    if let Some(n) = num_nodes {
        if offsets.len() != n + 1 {
            return bad(format!(
                "expected {} offsets, found {}",
                n + 1,
                offsets.len()
            ));
        }
    }
    if offsets[0] != 0 {
        return bad(format!("offsets[0] = {}, expected 0", offsets[0]));
    }
    if *offsets.last().unwrap() as usize != targets.len() {
        return bad(format!(
            "final offset {} does not match adjacency length {}",
            offsets.last().unwrap(),
            targets.len()
        ));
    }
    let n = offsets.len() - 1;
    // First prove every offset pair is monotone AND within the
    // adjacency array; only then is it safe to form row slices. The
    // final-offset check alone does not bound interior values — a
    // hostile [0, 10, 2] with 2 targets passes it and would panic the
    // slice below.
    for i in 0..n {
        let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
        if lo > hi {
            return bad(format!("offsets not monotone at node {i}"));
        }
        if hi > targets.len() {
            return bad(format!(
                "offset {hi} at node {} exceeds adjacency length {}",
                i + 1,
                targets.len()
            ));
        }
    }
    let mut self_loops = 0usize;
    for i in 0..n {
        let row = &targets[offsets[i] as usize..offsets[i + 1] as usize];
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return bad(format!("neighbors of node {i} not strictly sorted"));
            }
        }
        if let Some(&last) = row.last() {
            if last.index() >= n {
                return bad(format!(
                    "neighbor {last} of node {i} out of range (graph has {n} nodes)"
                ));
            }
        }
        // Rows are strictly sorted, so at most one self-loop each.
        if row.binary_search(&NodeId(i as u32)).is_ok() {
            self_loops += 1;
        }
    }
    Ok(self_loops)
}

impl CsrGraphMmap {
    /// Assemble a mapped graph from validated sections.
    ///
    /// The slices themselves are already bounds/alignment-checked
    /// ([`MapSlice::new`]); this constructor validates the *structural*
    /// invariants every traversal loop indexes by — so a hostile file
    /// is rejected here, once, and the hot loops stay assertion-free.
    pub fn from_sections(
        offsets: MapSlice<u32>,
        targets: MapSlice<NodeId>,
        weights: Option<MapSlice<f32>>,
        reverse: Option<(MapSlice<u32>, MapSlice<NodeId>)>,
        num_edges: usize,
        directed: bool,
    ) -> Result<Self, GraphError> {
        let self_loops = validate_csr_arrays("csr", offsets.as_slice(), targets.as_slice(), None)?;
        let n = offsets.len() - 1;
        if let Some(w) = &weights {
            if w.len() != targets.len() {
                return Err(GraphError::BadSnapshot(format!(
                    "weight section length {} does not match adjacency length {}",
                    w.len(),
                    targets.len()
                )));
            }
        }
        if let Some((ro, rt)) = &reverse {
            if !directed {
                return Err(GraphError::BadSnapshot(
                    "reverse CSR present on an undirected graph".into(),
                ));
            }
            validate_csr_arrays("reverse csr", ro.as_slice(), rt.as_slice(), Some(n))?;
            if rt.len() != targets.len() {
                return Err(GraphError::BadSnapshot(format!(
                    "reverse adjacency length {} does not match forward length {}",
                    rt.len(),
                    targets.len()
                )));
            }
        }
        // Exact cross-check: each directed arc is stored once; each
        // undirected edge twice except self-loops, stored once. A
        // tampered meta edge count would otherwise silently misreport
        // through num_edges()/stats.
        let expected_adjacency = if directed {
            Some(num_edges)
        } else {
            num_edges
                .checked_mul(2)
                .and_then(|d| d.checked_sub(self_loops))
        };
        if expected_adjacency != Some(targets.len()) {
            return Err(GraphError::BadSnapshot(format!(
                "declared edge count {num_edges} does not match adjacency length {} \
                 ({self_loops} self-loops, directed: {directed})",
                targets.len()
            )));
        }
        Ok(CsrGraphMmap {
            offsets,
            targets,
            weights,
            reverse,
            num_edges,
            directed,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges (an undirected edge counts once).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The reverse (incoming) adjacency as a view, if the compiled
    /// file carried it (directed graphs only; undirected adjacency is
    /// its own reverse).
    pub fn reverse_csr(&self) -> Option<CsrView<'_>> {
        let (ro, rt) = self.reverse.as_ref()?;
        Some(CsrView::from_raw(
            ro.as_slice(),
            rt.as_slice(),
            None,
            self.num_edges,
            self.directed,
        ))
    }

    /// Copy the mapped arrays into an owned [`crate::CsrGraph`].
    pub fn to_owned_graph(&self) -> crate::CsrGraph {
        crate::CsrGraph::from_parts(
            self.offsets.as_slice().to_vec(),
            self.targets.as_slice().to_vec(),
            self.weights.as_ref().map(|w| w.as_slice().to_vec()),
            self.num_edges,
            self.directed,
        )
    }
}

impl GraphStore for CsrGraphMmap {
    #[inline(always)]
    fn csr(&self) -> CsrView<'_> {
        CsrView::from_raw(
            self.offsets.as_slice(),
            self.targets.as_slice(),
            self.weights.as_ref().map(|w| w.as_slice()),
            self.num_edges,
            self.directed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Little-endian encode a u32 slice into bytes.
    fn bytes_of_u32(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn map_of(vals: &[u32]) -> Arc<Mmap> {
        Arc::new(Mmap::from_vec(bytes_of_u32(vals)))
    }

    #[test]
    fn map_slice_views_the_right_elements() {
        let buf = map_of(&[1, 2, 3, 4]);
        let s = MapSlice::<u32>::new(buf.clone(), 4, 2).unwrap();
        assert_eq!(s.as_slice(), &[2, 3]);
        assert_eq!(s.len(), 2);
        let all = MapSlice::<NodeId>::new(buf, 0, 4).unwrap();
        assert_eq!(all.as_slice()[3], NodeId(4));
    }

    #[test]
    fn map_slice_rejects_out_of_bounds_and_misalignment() {
        let buf = map_of(&[1, 2, 3, 4]);
        assert!(MapSlice::<u32>::new(buf.clone(), 0, 5).is_err());
        assert!(MapSlice::<u32>::new(buf.clone(), 2, 1).is_err());
        assert!(MapSlice::<f64>::new(buf.clone(), 4, 1).is_err());
        assert!(MapSlice::<u32>::new(buf.clone(), usize::MAX, 1).is_err());
        assert!(MapSlice::<u32>::new(buf, 0, usize::MAX / 2).is_err());
    }

    /// The offsets/targets arrays of an in-RAM graph as map slices,
    /// round-tripped through a byte buffer.
    fn sections_of(g: &crate::CsrGraph) -> (MapSlice<u32>, MapSlice<NodeId>) {
        let v = g.view();
        let mut bytes = bytes_of_u32(v.offsets());
        bytes.extend(v.targets().iter().flat_map(|t| t.0.to_le_bytes()));
        let buf = Arc::new(Mmap::from_vec(bytes));
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, v.offsets().len()).unwrap();
        let targets =
            MapSlice::<NodeId>::new(buf, v.offsets().len() * 4, v.targets().len()).unwrap();
        (offsets, targets)
    }

    /// A mapped copy of an in-RAM graph.
    fn mapped_copy(g: &crate::CsrGraph) -> CsrGraphMmap {
        let (offsets, targets) = sections_of(g);
        CsrGraphMmap::from_sections(offsets, targets, None, None, g.num_edges(), g.is_directed())
            .unwrap()
    }

    #[test]
    fn mapped_graph_matches_in_ram() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .build()
            .unwrap();
        let m = mapped_copy(&g);
        assert_eq!(m.num_nodes(), g.num_nodes());
        assert_eq!(m.num_edges(), g.num_edges());
        let mv = m.csr();
        let gv = g.view();
        for u in gv.nodes() {
            assert_eq!(mv.neighbors(u), gv.neighbors(u));
            assert_eq!(mv.degree(u), gv.degree(u));
        }
        assert_eq!(
            mv.edges().collect::<Vec<_>>(),
            gv.edges().collect::<Vec<_>>()
        );
        let owned = m.to_owned_graph();
        assert_eq!(owned.neighbors(NodeId(2)), gv.neighbors(NodeId(2)));
    }

    #[test]
    fn structural_validation_rejects_hostile_sections() {
        // Non-monotone offsets.
        let buf = map_of(&[0, 3, 1, /* targets */ 1, 0, 2]);
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, 3).unwrap();
        let targets = MapSlice::<NodeId>::new(buf.clone(), 12, 3).unwrap();
        assert!(CsrGraphMmap::from_sections(offsets, targets, None, None, 3, true).is_err());

        // Target out of range.
        let buf = map_of(&[0, 1, 2, /* targets */ 1, 9]);
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, 3).unwrap();
        let targets = MapSlice::<NodeId>::new(buf.clone(), 12, 2).unwrap();
        assert!(CsrGraphMmap::from_sections(offsets, targets, None, None, 2, true).is_err());

        // Unsorted row.
        let buf = map_of(&[0, 2, 2, /* targets */ 1, 0]);
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, 3).unwrap();
        let targets = MapSlice::<NodeId>::new(buf.clone(), 12, 2).unwrap();
        assert!(CsrGraphMmap::from_sections(offsets, targets, None, None, 2, true).is_err());

        // Final offset disagrees with adjacency length.
        let buf = map_of(&[0, 1, 4, /* targets */ 1, 0]);
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, 3).unwrap();
        let targets = MapSlice::<NodeId>::new(buf, 12, 2).unwrap();
        assert!(CsrGraphMmap::from_sections(offsets, targets, None, None, 2, true).is_err());

        // Interior offset beyond the adjacency array while the final
        // offset still matches its length: the pairwise monotone check
        // passes at node 0 (0 <= 10), so slicing before bounding would
        // panic. Must reject with an error instead.
        let buf = map_of(&[0, 10, 2, /* targets */ 1, 0]);
        let offsets = MapSlice::<u32>::new(buf.clone(), 0, 3).unwrap();
        let targets = MapSlice::<NodeId>::new(buf, 12, 2).unwrap();
        assert!(CsrGraphMmap::from_sections(offsets, targets, None, None, 2, true).is_err());
    }

    #[test]
    fn declared_edge_count_must_match_adjacency_exactly() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build()
            .unwrap();
        let (offsets, targets) = sections_of(&g);
        // The true count loads; understated and overstated counts are
        // both rejected (a tampered meta would misreport num_edges()).
        let ok = CsrGraphMmap::from_sections(
            offsets.clone(),
            targets.clone(),
            None,
            None,
            g.num_edges(),
            false,
        );
        assert!(ok.is_ok());
        for lie in [g.num_edges() - 1, g.num_edges() + 1, 0, usize::MAX] {
            let r = CsrGraphMmap::from_sections(
                offsets.clone(),
                targets.clone(),
                None,
                None,
                lie,
                false,
            );
            assert!(r.is_err(), "edge count {lie} was accepted");
        }
    }

    #[test]
    fn self_loops_count_once_in_edge_cross_check() {
        use crate::builder::SelfLoopPolicy;
        let g = GraphBuilder::undirected()
            .self_loops(SelfLoopPolicy::Keep)
            .add_edge(0, 0)
            .add_edge(0, 1)
            .add_edge(1, 1)
            .build()
            .unwrap();
        // 3 edges, 2 self-loops: adjacency holds 2*3 - 2 = 4 entries.
        let m = mapped_copy(&g);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.csr().num_adjacency_entries(), 4);
    }
}
