//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building, loading or storing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// More nodes than `NodeId` can address.
    TooManyNodes(usize),
    /// More adjacency entries than the CSR offset type can address.
    TooManyEdges(usize),
    /// An edge referenced a node id ≥ the declared node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The declared number of nodes.
        num_nodes: u32,
    },
    /// A self-loop was found and the builder forbids them.
    SelfLoop(u32),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A text edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A binary snapshot had a bad magic number, version or length.
    BadSnapshot(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooManyNodes(n) => {
                write!(f, "graph has {n} nodes, exceeding the u32 id space")
            }
            GraphError::TooManyEdges(m) => {
                write!(
                    f,
                    "graph has {m} adjacency entries, exceeding the u32 offset space"
                )
            }
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "edge endpoint {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop on node {u} is not allowed"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            GraphError::BadSnapshot(msg) => write!(f, "bad graph snapshot: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 5,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('5'));

        let e = GraphError::Parse {
            line: 3,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
