//! Delta overlay over an immutable CSR base.
//!
//! Every ROADMAP scenario assumes the graph mutates, yet [`CsrGraph`]
//! and the compiled container are write-once. [`OverlayGraph`] closes
//! that gap: it layers sorted insert / tombstone edge logs and a
//! score-override map over an immutable base — the in-RAM
//! [`CsrGraph`], a memory-mapped [`crate::CsrGraphMmap`], or anything
//! else implementing [`GraphStore`] — and re-exposes the merged graph
//! through the same [`GraphStore`] trait. The seven query algorithms,
//! the planner and the sharded engine all read through
//! [`CsrView`](crate::CsrView) slices, so they run on an overlay
//! unchanged and at full speed: after a batch of mutations the overlay
//! materializes one merged CSR (an `O(E log E)` builder pass), and
//! queries never pay a per-edge log lookup.
//!
//! That trade is deliberate. Re-merging the adjacency arrays is cheap
//! next to rebuilding the h-hop indexes (the startup benchmark puts
//! the index build at ~14× the parse+build cost); the expensive part
//! of an update is index maintenance, which `lona-core`'s delta repair
//! limits to the ≤h-hop dirty region around mutated endpoints.
//!
//! ## Semantics
//!
//! * The node set is **fixed** at the base's `num_nodes`; deltas may
//!   only rewire edges among existing nodes. Out-of-range endpoints
//!   are rejected with [`GraphError::NodeOutOfRange`].
//! * Within one [`GraphDelta`], deletes apply before inserts, so a
//!   delete+insert pair re-weights an edge.
//! * Inserting an edge that is already live is a no-op (the existing
//!   weight wins, matching [`GraphBuilder`]'s first-weight-wins rule);
//!   deleting an absent edge is a no-op.
//! * Self-loop mutations are rejected with [`GraphError::SelfLoop`]
//!   (the paper's networks are simple graphs).
//! * [`GraphDelta::apply`] via [`OverlayGraph::apply`] is atomic: a
//!   rejected delta leaves the overlay untouched.
//! * Score overrides follow `ScoreVec` semantics: NaN becomes 0 and
//!   values clamp into `[0, 1]`.

use std::collections::BTreeMap;

use crate::builder::{GraphBuilder, SelfLoopPolicy};
use crate::csr::{CsrGraph, CsrView};
use crate::error::GraphError;
use crate::node::NodeId;
use crate::store::GraphStore;
use crate::Result;

/// A batch of graph mutations: edge inserts, edge deletes and
/// relevance-score overrides, applied atomically by
/// [`OverlayGraph::apply`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphDelta {
    /// Edges to insert, with weights (`1.0` for unweighted edges).
    pub inserts: Vec<(u32, u32, f32)>,
    /// Edges to delete.
    pub deletes: Vec<(u32, u32)>,
    /// Per-node relevance-score overrides.
    pub score_overrides: Vec<(u32, f64)>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.score_overrides.is_empty()
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.score_overrides.len()
    }

    /// Stage an unweighted edge insert.
    pub fn insert(mut self, u: u32, v: u32) -> Self {
        self.inserts.push((u, v, 1.0));
        self
    }

    /// Stage a weighted edge insert.
    pub fn insert_weighted(mut self, u: u32, v: u32, w: f32) -> Self {
        self.inserts.push((u, v, w));
        self
    }

    /// Stage an edge delete.
    pub fn delete(mut self, u: u32, v: u32) -> Self {
        self.deletes.push((u, v));
        self
    }

    /// Stage a relevance-score override.
    pub fn override_score(mut self, u: u32, score: f64) -> Self {
        self.score_overrides.push((u, score));
        self
    }

    /// Parse the text delta format:
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// add 3 17        # insert edge (weight 1.0)
    /// add 3 18 0.5    # insert weighted edge
    /// del 0 9         # delete edge
    /// score 17 0.85   # override node 17's relevance score
    /// ```
    ///
    /// Endpoint range is checked later, at apply time, against the
    /// target graph; this parser rejects malformed lines, non-finite
    /// weights and out-of-`[0, 1]` scores with 1-based line numbers.
    pub fn parse_str(text: &str) -> Result<Self> {
        let mut delta = GraphDelta::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut tok = t.split_whitespace();
            let op = tok.next().expect("non-empty line has a first token");
            let bad = |msg: String| GraphError::Parse { line, msg };
            let node = |what: &str, tok: &mut dyn Iterator<Item = &str>| -> Result<u32> {
                let s = tok
                    .next()
                    .ok_or_else(|| bad_parse(line, format!("missing {what}")))?;
                s.parse::<u32>()
                    .map_err(|_| bad_parse(line, format!("bad {what} {s:?}")))
            };
            match op {
                "add" => {
                    let u = node("source id", &mut tok)?;
                    let v = node("target id", &mut tok)?;
                    let w = match tok.next() {
                        None => 1.0f32,
                        Some(s) => {
                            let w = s
                                .parse::<f32>()
                                .map_err(|_| bad(format!("bad weight {s:?}")))?;
                            if !w.is_finite() {
                                return Err(bad(format!("weight {s:?} is not finite")));
                            }
                            w
                        }
                    };
                    delta.inserts.push((u, v, w));
                }
                "del" => {
                    let u = node("source id", &mut tok)?;
                    let v = node("target id", &mut tok)?;
                    delta.deletes.push((u, v));
                }
                "score" => {
                    let u = node("node id", &mut tok)?;
                    let s = tok.next().ok_or_else(|| bad("missing score".into()))?;
                    let x = s
                        .parse::<f64>()
                        .map_err(|_| bad(format!("bad score {s:?}")))?;
                    if !(0.0..=1.0).contains(&x) {
                        return Err(bad(format!("score {x} outside [0, 1]")));
                    }
                    delta.score_overrides.push((u, x));
                }
                other => {
                    return Err(bad(format!(
                        "unknown delta op {other:?} (expected add/del/score)"
                    )));
                }
            }
            if let Some(extra) = tok.next() {
                return Err(GraphError::Parse {
                    line,
                    msg: format!("trailing token {extra:?}"),
                });
            }
        }
        Ok(delta)
    }
}

fn bad_parse(line: usize, msg: String) -> GraphError {
    GraphError::Parse { line, msg }
}

/// What [`OverlayGraph::apply`] actually changed.
///
/// `old` carries an owned copy of the pre-delta graph whenever edges
/// changed — exactly what index delta-repair needs to walk the *old*
/// h-hop neighborhoods of the touched endpoints. Score-only deltas
/// leave it `None` (indexes are score-independent, nothing to repair).
#[derive(Debug)]
pub struct AppliedDelta {
    /// The graph as it was before this delta, if any edge changed.
    pub old: Option<CsrGraph>,
    /// Endpoints of edges that actually changed, sorted and unique.
    pub touched: Vec<NodeId>,
    /// Edges inserted (no-op inserts excluded).
    pub inserted: u64,
    /// Edges deleted (no-op deletes excluded).
    pub deleted: u64,
    /// Score overrides recorded.
    pub scores_overridden: u64,
}

/// A mutable delta overlay over an immutable base graph.
///
/// The semantics are spelled out in the module docs above. The
/// overlay keeps the
/// logical delta as sorted logs (`inserts` not in the base,
/// `tombstones` of suppressed base edges) plus a materialized merged
/// CSR; [`GraphStore::csr`] always returns the merged view, so query
/// code is oblivious to the layering. [`OverlayGraph::compact`] folds
/// the logs into a fresh CSR base in place.
pub struct OverlayGraph<B> {
    base: B,
    /// Replaces `base` as the effective base after [`Self::compact`].
    compacted: Option<CsrGraph>,
    /// Live inserted edges not present in the effective base
    /// (canonical `(min, max)` when undirected, sorted).
    inserts: Vec<(u32, u32, f32)>,
    /// Effective-base edges currently deleted (canonical, sorted).
    tombstones: Vec<(u32, u32)>,
    /// Per-node relevance-score overrides (clamped into `[0, 1]`).
    score_overrides: BTreeMap<u32, f64>,
    /// Merged materialization; `Some` whenever the logs are non-empty.
    merged: Option<CsrGraph>,
}

impl<B: GraphStore> OverlayGraph<B> {
    /// Wrap a base graph. Until the first effective mutation the
    /// overlay is a zero-cost passthrough: [`GraphStore::csr`] returns
    /// the base's own view, no copy.
    pub fn new(base: B) -> Self {
        OverlayGraph {
            base,
            compacted: None,
            inserts: Vec::new(),
            tombstones: Vec::new(),
            score_overrides: BTreeMap::new(),
            merged: None,
        }
    }

    /// The wrapped base store.
    pub fn base(&self) -> &B {
        &self.base
    }

    /// Number of nodes (fixed for the overlay's lifetime).
    pub fn num_nodes(&self) -> usize {
        self.csr().num_nodes()
    }

    /// Number of log entries pending compaction.
    pub fn log_len(&self) -> usize {
        self.inserts.len() + self.tombstones.len()
    }

    /// Iterate the current score overrides.
    pub fn score_overrides(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.score_overrides.iter().map(|(&u, &s)| (u, s))
    }

    /// The effective base: the compacted CSR if [`Self::compact`] ran,
    /// else the original base.
    fn base_view(&self) -> CsrView<'_> {
        match &self.compacted {
            Some(g) => g.view(),
            None => self.base.csr(),
        }
    }

    /// Apply a delta atomically: validate every operation first, then
    /// update the logs, re-materialize the merged CSR, and report what
    /// changed (with the pre-delta graph for index repair).
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<AppliedDelta> {
        let n = self.csr().num_nodes() as u32;
        let check = |u: u32, v: u32| -> Result<()> {
            for e in [u, v] {
                if e >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: e,
                        num_nodes: n,
                    });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            Ok(())
        };
        for &(u, v, _) in &delta.inserts {
            check(u, v)?;
        }
        for &(u, v) in &delta.deletes {
            check(u, v)?;
        }
        for &(u, _) in &delta.score_overrides {
            if u >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    num_nodes: n,
                });
            }
        }

        // Borrow the effective base at field granularity so the logs
        // stay mutable while the view is live.
        let base = match &self.compacted {
            Some(g) => g.view(),
            None => self.base.csr(),
        };
        let directed = base.is_directed();
        let canon = |u: u32, v: u32| if !directed && u > v { (v, u) } else { (u, v) };
        let mut touched = Vec::new();
        let mut deleted = 0u64;
        let mut inserted = 0u64;

        // Deletes first (see module docs): drop insert-log edges, or
        // tombstone base edges; deleting an absent edge is a no-op.
        for &(u, v) in &delta.deletes {
            let e = canon(u, v);
            if let Ok(i) = self.inserts.binary_search_by_key(&e, |x| (x.0, x.1)) {
                self.inserts.remove(i);
            } else if base.has_edge(NodeId(e.0), NodeId(e.1))
                && self.tombstones.binary_search(&e).is_err()
            {
                let at = self.tombstones.partition_point(|&t| t < e);
                self.tombstones.insert(at, e);
            } else {
                continue;
            }
            deleted += 1;
            touched.push(NodeId(e.0));
            touched.push(NodeId(e.1));
        }

        // Inserts: skip live edges; a tombstoned base edge re-inserts
        // through the insert log (with the new weight) so the logs
        // stay disjoint from the live base.
        for &(u, v, w) in &delta.inserts {
            let e = canon(u, v);
            let in_log = self.inserts.binary_search_by_key(&e, |x| (x.0, x.1));
            let live_in_base = base.has_edge(NodeId(e.0), NodeId(e.1))
                && self.tombstones.binary_search(&e).is_err();
            if in_log.is_ok() || live_in_base {
                continue;
            }
            let at = in_log.unwrap_err();
            self.inserts.insert(at, (e.0, e.1, w));
            inserted += 1;
            touched.push(NodeId(e.0));
            touched.push(NodeId(e.1));
        }

        let old = if deleted + inserted > 0 {
            let old = match self.merged.take() {
                Some(g) => g,
                None => copy_view(base),
            };
            self.merged = Some(self.materialize()?);
            touched.sort_unstable();
            touched.dedup();
            Some(old)
        } else {
            None
        };

        let mut scores_overridden = 0u64;
        for &(u, s) in &delta.score_overrides {
            // ScoreVec semantics: NaN means "not relevant".
            let s = if s.is_nan() { 0.0 } else { s.clamp(0.0, 1.0) };
            self.score_overrides.insert(u, s);
            scores_overridden += 1;
        }

        Ok(AppliedDelta {
            old,
            touched,
            inserted,
            deleted,
            scores_overridden,
        })
    }

    /// Rebuild the merged CSR from the effective base plus the logs.
    fn materialize(&self) -> Result<CsrGraph> {
        let base = self.base_view();
        let n = base.num_nodes() as u32;
        // Stay unweighted when the base is and every insert carries
        // the default weight, so a merged graph is indistinguishable
        // from one built directly from the same edge list.
        let weighted = base.has_weights() || self.inserts.iter().any(|&(_, _, w)| w != 1.0);
        let mut b = if base.is_directed() {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        }
        .with_num_nodes(n)
        // Keep: a base built with `SelfLoopPolicy::Keep` must survive
        // the merge (the logs themselves never contain self-loops).
        .self_loops(SelfLoopPolicy::Keep)
        .reserve(base.num_edges() + self.inserts.len());
        for (u, v, w) in base.edges() {
            if self.tombstones.binary_search(&(u.0, v.0)).is_ok() {
                continue;
            }
            if weighted {
                b.push_weighted_edge(u.0, v.0, w);
            } else {
                b.push_edge(u.0, v.0);
            }
        }
        for &(u, v, w) in &self.inserts {
            if weighted {
                b.push_weighted_edge(u, v, w);
            } else {
                b.push_edge(u, v);
            }
        }
        b.build()
    }

    /// Fold the logs into a fresh CSR base, in place. After this the
    /// overlay is clean (`log_len() == 0`) and [`GraphStore::csr`]
    /// serves the compacted arrays directly; score overrides persist
    /// (they are not part of the graph). Idempotent and cheap when
    /// already clean.
    pub fn compact(&mut self) {
        if let Some(m) = self.merged.take() {
            self.compacted = Some(m);
            self.inserts.clear();
            self.tombstones.clear();
        }
        debug_assert!(self.inserts.is_empty() && self.tombstones.is_empty());
    }

    /// Consume the overlay, returning the fully compacted owned graph
    /// (for re-compilation or snapshotting).
    pub fn into_graph(mut self) -> CsrGraph {
        self.compact();
        match (self.merged, self.compacted) {
            (Some(g), _) | (None, Some(g)) => g,
            (None, None) => copy_view(self.base.csr()),
        }
    }
}

impl<B: GraphStore> GraphStore for OverlayGraph<B> {
    fn csr(&self) -> CsrView<'_> {
        if let Some(m) = &self.merged {
            return m.view();
        }
        self.base_view()
    }
}

/// Owned deep copy of a view (the overlay needs the pre-delta graph to
/// outlive the mutation).
fn copy_view(v: CsrView<'_>) -> CsrGraph {
    CsrGraph::from_parts(
        v.offsets().to_vec(),
        v.targets().to_vec(),
        v.weights().map(|w| w.to_vec()),
        v.num_edges(),
        v.is_directed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle, plus 2-3 tail and isolated 4.
        GraphBuilder::undirected()
            .with_num_nodes(5)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .build()
            .unwrap()
    }

    fn edge_set(v: CsrView<'_>) -> Vec<(u32, u32, u32)> {
        v.edges().map(|(u, w, x)| (u.0, w.0, x.to_bits())).collect()
    }

    #[test]
    fn passthrough_before_first_mutation() {
        let g = base();
        let o = OverlayGraph::new(&g);
        assert_eq!(edge_set(o.csr()), edge_set(g.view()));
        assert_eq!(o.log_len(), 0);
        assert_eq!(o.num_nodes(), 5);
    }

    #[test]
    fn insert_and_delete_match_rebuilt_reference() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        let d = GraphDelta::new().insert(3, 4).delete(0, 1).delete(1, 2);
        let applied = o.apply(&d).unwrap();
        assert_eq!(applied.inserted, 1);
        assert_eq!(applied.deleted, 2);
        assert_eq!(
            applied.touched,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(edge_set(applied.old.unwrap().view()), edge_set(g.view()));

        let want = GraphBuilder::undirected()
            .with_num_nodes(5)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .build()
            .unwrap();
        assert_eq!(edge_set(o.csr()), edge_set(want.view()));
        assert!(!o.csr().has_weights());
    }

    #[test]
    fn noop_operations_touch_nothing() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        // Edge (0,1) exists; edge (0,3) does not.
        let d = GraphDelta::new().insert(1, 0).delete(0, 3);
        let applied = o.apply(&d).unwrap();
        assert_eq!(applied.inserted + applied.deleted, 0);
        assert!(applied.old.is_none());
        assert!(applied.touched.is_empty());
        assert_eq!(o.log_len(), 0);
        assert_eq!(edge_set(o.csr()), edge_set(g.view()));
    }

    #[test]
    fn delete_of_logged_insert_cancels_it() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        o.apply(&GraphDelta::new().insert(0, 4)).unwrap();
        assert!(o.csr().has_edge(NodeId(0), NodeId(4)));
        let applied = o.apply(&GraphDelta::new().delete(4, 0)).unwrap();
        assert_eq!(applied.deleted, 1);
        assert!(!o.csr().has_edge(NodeId(0), NodeId(4)));
        assert_eq!(o.log_len(), 0);
        assert_eq!(edge_set(o.csr()), edge_set(g.view()));
    }

    #[test]
    fn delete_then_reinsert_takes_new_weight() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 2.0)
            .add_weighted_edge(1, 2, 3.0)
            .build()
            .unwrap();
        let mut o = OverlayGraph::new(&g);
        let d = GraphDelta::new().delete(0, 1).insert_weighted(0, 1, 9.0);
        let applied = o.apply(&d).unwrap();
        assert_eq!((applied.deleted, applied.inserted), (1, 1));
        assert_eq!(o.csr().edge_weight(NodeId(0), NodeId(1)), Some(9.0));
        assert_eq!(o.csr().edge_weight(NodeId(1), NodeId(2)), Some(3.0));
    }

    #[test]
    fn insert_of_live_edge_keeps_existing_weight() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 2.0)
            .build()
            .unwrap();
        let mut o = OverlayGraph::new(&g);
        o.apply(&GraphDelta::new().insert_weighted(1, 0, 7.0))
            .unwrap();
        assert_eq!(o.csr().edge_weight(NodeId(0), NodeId(1)), Some(2.0));
    }

    #[test]
    fn rejected_delta_leaves_overlay_untouched() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        let err = o
            .apply(&GraphDelta::new().insert(0, 4).insert(1, 99))
            .unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 99,
                num_nodes: 5
            }
        ));
        assert_eq!(o.log_len(), 0);
        assert_eq!(edge_set(o.csr()), edge_set(g.view()));

        let err = o.apply(&GraphDelta::new().delete(3, 3)).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop(3)));
        let err = o
            .apply(&GraphDelta::new().override_score(5, 0.5))
            .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, .. }));
    }

    #[test]
    fn score_overrides_clamp_and_accumulate() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        let d = GraphDelta::new()
            .override_score(0, 0.25)
            .override_score(1, 7.0)
            .override_score(2, f64::NAN);
        let applied = o.apply(&d).unwrap();
        assert_eq!(applied.scores_overridden, 3);
        assert!(applied.old.is_none());
        let got: Vec<_> = o.score_overrides().collect();
        assert_eq!(got, vec![(0, 0.25), (1, 1.0), (2, 0.0)]);
        // Later overrides win.
        o.apply(&GraphDelta::new().override_score(0, 0.75)).unwrap();
        assert_eq!(o.score_overrides().next(), Some((0, 0.75)));
    }

    #[test]
    fn compact_folds_logs_and_further_deltas_stack() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        o.apply(&GraphDelta::new().insert(3, 4).delete(0, 1))
            .unwrap();
        let before = edge_set(o.csr());
        o.compact();
        assert_eq!(o.log_len(), 0);
        assert_eq!(edge_set(o.csr()), before);
        // Mutations after compaction layer over the compacted base.
        o.apply(&GraphDelta::new().insert(0, 1)).unwrap();
        assert!(o.csr().has_edge(NodeId(0), NodeId(1)));
        assert!(o.csr().has_edge(NodeId(3), NodeId(4)));
        o.compact();
        o.compact(); // idempotent
        assert!(o.csr().has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn into_graph_returns_compacted_owned_graph() {
        let g = base();
        let mut o = OverlayGraph::new(&g);
        o.apply(&GraphDelta::new().insert(3, 4)).unwrap();
        let folded = o.into_graph();
        assert!(folded.has_edge(NodeId(3), NodeId(4)));
        assert_eq!(folded.num_edges(), 5);
        // Clean overlay: an owned copy of the base.
        let clean = OverlayGraph::new(&g).into_graph();
        assert_eq!(edge_set(clean.view()), edge_set(g.view()));
    }

    #[test]
    fn directed_overlay_keeps_arc_orientation() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        let mut o = OverlayGraph::new(&g);
        // Deleting the reverse arc is a no-op; deleting the arc works.
        let applied = o.apply(&GraphDelta::new().delete(1, 0)).unwrap();
        assert_eq!(applied.deleted, 0);
        let applied = o
            .apply(&GraphDelta::new().delete(0, 1).insert(2, 0))
            .unwrap();
        assert_eq!((applied.deleted, applied.inserted), (1, 1));
        assert!(!o.csr().has_edge(NodeId(0), NodeId(1)));
        assert!(o.csr().has_edge(NodeId(2), NodeId(0)));
        assert!(!o.csr().has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn parse_accepts_the_documented_format() {
        let d = GraphDelta::parse_str(
            "# a comment\n\nadd 3 17\nadd 3 18 0.5\ndel 0 9\nscore 17 0.85\n",
        )
        .unwrap();
        assert_eq!(d.inserts, vec![(3, 17, 1.0), (3, 18, 0.5)]);
        assert_eq!(d.deletes, vec![(0, 9)]);
        assert_eq!(d.score_overrides, vec![(17, 0.85)]);
        assert_eq!(d.len(), 4);
        assert!(GraphDelta::parse_str("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_hostile_lines_with_line_numbers() {
        for (text, want_line) in [
            ("frob 1 2", 1),
            ("add 1", 1),
            ("\nadd 1 x", 2),
            ("del 1 2 3", 1),
            ("add 1 2 nan", 1),
            ("score 1 1.5", 1),
            ("score 1 oops", 1),
            ("add 1 2 1.0 extra", 1),
        ] {
            match GraphDelta::parse_str(text) {
                Err(GraphError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "wrong line for {text:?}")
                }
                other => panic!("{text:?} parsed as {other:?}"),
            }
        }
    }
}
