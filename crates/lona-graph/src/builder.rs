//! Edge-list graph construction.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// Self-loop handling policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelfLoopPolicy {
    /// Silently drop self-loops (default: the paper's networks are simple).
    Drop,
    /// Keep self-loops as single adjacency entries.
    Keep,
    /// Fail the build with [`GraphError::SelfLoop`].
    Error,
}

/// Builds a [`CsrGraph`] from an edge list.
///
/// The builder accepts edges in any order, optionally with weights,
/// deduplicates parallel edges (keeping the first weight), applies the
/// self-loop policy, and symmetrizes undirected graphs.
///
/// ```
/// use lona_graph::{GraphBuilder, NodeId};
/// let g = GraphBuilder::undirected()
///     .add_edge(3, 1)      // node count inferred: max id + 1
///     .add_edge(1, 3)      // duplicate (reversed) — dropped
///     .add_edge(0, 2)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32, f32)>,
    num_nodes: Option<u32>,
    directed: bool,
    weighted: bool,
    self_loops: SelfLoopPolicy,
}

impl GraphBuilder {
    /// Start an undirected graph (each edge stored in both adjacency lists).
    pub fn undirected() -> Self {
        GraphBuilder {
            edges: Vec::new(),
            num_nodes: None,
            directed: false,
            weighted: false,
            self_loops: SelfLoopPolicy::Drop,
        }
    }

    /// Start a directed graph (arcs stored on the source side only).
    pub fn directed() -> Self {
        GraphBuilder {
            directed: true,
            ..Self::undirected()
        }
    }

    /// Declare the node count explicitly (otherwise inferred as
    /// `max endpoint + 1`). Useful for graphs with trailing isolated
    /// nodes.
    pub fn with_num_nodes(mut self, n: u32) -> Self {
        self.num_nodes = Some(n);
        self
    }

    /// Set the self-loop policy (default [`SelfLoopPolicy::Drop`]).
    pub fn self_loops(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loops = policy;
        self
    }

    /// Reserve capacity for `n` more edges.
    pub fn reserve(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Add an unweighted edge.
    #[inline]
    pub fn add_edge(mut self, u: u32, v: u32) -> Self {
        self.edges.push((u, v, 1.0));
        self
    }

    /// Add a weighted edge; the whole graph becomes weighted.
    #[inline]
    pub fn add_weighted_edge(mut self, u: u32, v: u32, w: f32) -> Self {
        self.weighted = true;
        self.edges.push((u, v, w));
        self
    }

    /// Add many unweighted edges at once.
    pub fn extend_edges(mut self, it: impl IntoIterator<Item = (u32, u32)>) -> Self {
        self.edges.extend(it.into_iter().map(|(u, v)| (u, v, 1.0)));
        self
    }

    /// Add an unweighted edge through a mutable reference (handy in
    /// generator loops where the builder is threaded through).
    #[inline]
    pub fn push_edge(&mut self, u: u32, v: u32) {
        self.edges.push((u, v, 1.0));
    }

    /// Add a weighted edge through a mutable reference.
    #[inline]
    pub fn push_weighted_edge(&mut self, u: u32, v: u32, w: f32) {
        self.weighted = true;
        self.edges.push((u, v, w));
    }

    /// Number of (raw, pre-dedup) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finish the build.
    ///
    /// Cost: `O(E log E)` for the sort plus linear passes. This runs
    /// once per dataset so simplicity beats a radix sort here.
    pub fn build(self) -> Result<CsrGraph> {
        let GraphBuilder {
            mut edges,
            num_nodes,
            directed,
            weighted,
            self_loops,
        } = self;

        // Resolve node count.
        let max_endpoint = edges
            .iter()
            .map(|&(u, v, _)| u.max(v))
            .max()
            .map(|m| m as u64 + 1)
            .unwrap_or(0);
        let n: u64 = match num_nodes {
            Some(n) => {
                if max_endpoint > n as u64 {
                    let bad = edges
                        .iter()
                        .map(|&(u, v, _)| u.max(v))
                        .find(|&e| e as u64 >= n as u64)
                        .unwrap();
                    return Err(GraphError::NodeOutOfRange {
                        node: bad,
                        num_nodes: n,
                    });
                }
                n as u64
            }
            None => max_endpoint,
        };
        if n >= u32::MAX as u64 {
            return Err(GraphError::TooManyNodes(n as usize));
        }
        let n = n as u32;

        // Self-loop policy.
        match self_loops {
            SelfLoopPolicy::Drop => edges.retain(|&(u, v, _)| u != v),
            SelfLoopPolicy::Keep => {}
            SelfLoopPolicy::Error => {
                if let Some(&(u, _, _)) = edges.iter().find(|&&(u, v, _)| u == v) {
                    return Err(GraphError::SelfLoop(u));
                }
            }
        }

        // Canonicalize undirected edges as (min, max) so duplicates in
        // either orientation collapse together.
        if !directed {
            for e in &mut edges {
                if e.0 > e.1 {
                    std::mem::swap(&mut e.0, &mut e.1);
                }
            }
        }

        // Sort + dedup by endpoints (first weight wins).
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        edges.dedup_by_key(|e| (e.0, e.1));
        let num_edges = edges.len();

        // Count adjacency entries. Undirected edges appear on both
        // sides except self-loops, which are stored once.
        let mut degree = vec![0u32; n as usize];
        let mut entries: u64 = 0;
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            entries += 1;
            if !directed && u != v {
                degree[v as usize] += 1;
                entries += 1;
            }
        }
        if entries > u32::MAX as u64 {
            return Err(GraphError::TooManyEdges(entries as usize));
        }

        // Prefix-sum offsets.
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc: u32 = 0;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        // Scatter targets (and weights) using a per-node write cursor.
        let mut cursor: Vec<u32> = offsets[..n as usize].to_vec();
        let mut targets = vec![NodeId(0); entries as usize];
        let mut weights_vec = if weighted {
            vec![0f32; entries as usize]
        } else {
            Vec::new()
        };
        for &(u, v, w) in &edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = NodeId(v);
            if weighted {
                weights_vec[*c as usize] = w;
            }
            *c += 1;
            if !directed && u != v {
                let c = &mut cursor[v as usize];
                targets[*c as usize] = NodeId(u);
                if weighted {
                    weights_vec[*c as usize] = w;
                }
                *c += 1;
            }
        }

        // Sort each adjacency slice by target id (weights tag along).
        for u in 0..n as usize {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            if weighted {
                let mut pairs: Vec<(NodeId, f32)> = targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(weights_vec[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    targets[lo + i] = t;
                    weights_vec[lo + i] = w;
                }
            } else {
                targets[lo..hi].sort_unstable();
            }
        }

        Ok(CsrGraph::from_parts(
            offsets,
            targets,
            weighted.then_some(weights_vec),
            num_edges,
            directed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_collapses_both_orientations() {
        let g = GraphBuilder::undirected()
            .add_edge(1, 2)
            .add_edge(2, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.degree(NodeId(2)), 1);
    }

    #[test]
    fn directed_keeps_both_arcs() {
        let g = GraphBuilder::directed()
            .add_edge(1, 2)
            .add_edge(2, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(2)]);
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(1)]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 0)
            .add_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn self_loops_kept_when_asked() {
        let g = GraphBuilder::undirected()
            .self_loops(SelfLoopPolicy::Keep)
            .add_edge(0, 0)
            .add_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        // Self-loop stored once.
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn self_loops_error_when_forbidden() {
        let err = GraphBuilder::undirected()
            .self_loops(SelfLoopPolicy::Error)
            .add_edge(3, 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop(3)));
    }

    #[test]
    fn explicit_node_count_validates_endpoints() {
        let err = GraphBuilder::undirected()
            .with_num_nodes(3)
            .add_edge(1, 7)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 7,
                num_nodes: 3
            }
        ));
    }

    #[test]
    fn node_count_inferred_from_max_endpoint() {
        let g = GraphBuilder::undirected().add_edge(0, 9).build().unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn push_edge_api_matches_add_edge() {
        let mut b = GraphBuilder::undirected();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn duplicate_weighted_edge_keeps_first_weight() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 5.0)
            .add_weighted_edge(1, 0, 9.0)
            .build()
            .unwrap();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(5.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(5.0));
    }

    #[test]
    fn extend_edges_bulk() {
        let g = GraphBuilder::undirected()
            .extend_edges((0..5).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
    }
}
