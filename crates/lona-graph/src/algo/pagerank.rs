//! PageRank.
//!
//! The paper's introduction frames LONA against linkage analysis
//! ("Linkage analysis has evolved into powerful and easy-to-use search
//! tools like Google"); a PageRank vector is also a natural *relevance
//! function* input for aggregation queries ("find nodes whose
//! neighborhoods concentrate authority"), which
//! `lona-relevance::pagerank_relevance` exposes.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Configuration for the power-iteration PageRank solver.
#[derive(Copy, Clone, Debug)]
pub struct PageRankConfig {
    /// Damping factor (classic 0.85).
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Power-iteration PageRank over the (out-)adjacency of `g`.
///
/// Dangling nodes (out-degree 0) redistribute their mass uniformly,
/// the standard fix that keeps the result a probability distribution.
/// Returns `(ranks, iterations_used)`.
pub fn pagerank(g: &CsrGraph, config: &PageRankConfig) -> (Vec<f64>, usize) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    assert!(
        (0.0..1.0).contains(&config.damping),
        "damping must be in [0, 1), got {}",
        config.damping
    );

    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for iteration in 1..=config.max_iterations {
        // Dangling mass redistributed uniformly.
        let dangling: f64 = (0..n as u32)
            .filter(|&u| g.degree(NodeId(u)) == 0)
            .map(|u| rank[u as usize])
            .sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling * uniform;
        next.fill(base);

        for u in 0..n as u32 {
            let out = g.neighbors(NodeId(u));
            if out.is_empty() {
                continue;
            }
            let share = config.damping * rank[u as usize] / out.len() as f64;
            for &v in out {
                next[v.index()] += share;
            }
        }

        let l1: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if l1 < config.tolerance {
            return (rank, iteration);
        }
    }
    (rank, config.max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn ranks(g: &CsrGraph) -> Vec<f64> {
        pagerank(g, &PageRankConfig::default()).0
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap();
        let r = ranks(&g);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn symmetric_graph_uniform_ranks() {
        // A cycle: every node identical by symmetry.
        let g = GraphBuilder::undirected()
            .extend_edges((0..6).map(|i| (i, (i + 1) % 6)))
            .build()
            .unwrap();
        let r = ranks(&g);
        for &x in &r {
            assert!((x - 1.0 / 6.0).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = GraphBuilder::undirected()
            .extend_edges((1..=6).map(|i| (0u32, i)))
            .build()
            .unwrap();
        let r = ranks(&g);
        assert!(r[0] > 3.0 * r[1], "hub {} leaf {}", r[0], r[1]);
    }

    #[test]
    fn dangling_nodes_keep_distribution_normalized() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(2, 1)
            .build()
            .unwrap();
        // node 1 is dangling (no out-edges).
        let r = ranks(&g);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let (_, iters) = pagerank(&g, &PageRankConfig::default());
        assert!(
            iters > 0 && iters < 100,
            "unexpected iteration count {iters}"
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let (r, iters) = pagerank(&g, &PageRankConfig::default());
        assert!(r.is_empty());
        assert_eq!(iters, 0);
    }
}
