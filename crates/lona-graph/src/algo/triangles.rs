//! Triangle counting and clustering coefficient.
//!
//! Collaboration networks are highly clustered (co-author cliques),
//! which is exactly what makes the differential index small and
//! forward pruning effective; these measurements back the dataset
//! substitution argument in DESIGN.md §4.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Per-node and global triangle counts.
#[derive(Clone, Debug)]
pub struct TriangleCounts {
    /// Number of triangles incident to each node.
    pub per_node: Vec<usize>,
    /// Total number of distinct triangles in the graph.
    pub total: usize,
}

/// Count triangles with the forward/compact-adjacency algorithm:
/// for each edge `(u, v)` with `u < v`, intersect the *lower-id*
/// neighbor prefixes. O(Σ min-deg) — fine at our dataset scales.
pub fn count_triangles(g: &CsrGraph) -> TriangleCounts {
    let n = g.num_nodes();
    let mut per_node = vec![0usize; n];
    let mut total = 0usize;

    for u in 0..n as u32 {
        let nu = g.neighbors(NodeId(u));
        for &v in nu.iter().filter(|&&v| v.0 > u) {
            // Intersect neighbors(u) ∩ neighbors(v), counting only ids
            // greater than v so each triangle is counted exactly once
            // at its smallest vertex pair.
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                use std::cmp::Ordering::*;
                match nu[i].cmp(&nv[j]) {
                    Less => i += 1,
                    Greater => j += 1,
                    Equal => {
                        let w = nu[i];
                        if w.0 > v.0 {
                            total += 1;
                            per_node[u as usize] += 1;
                            per_node[v.index()] += 1;
                            per_node[w.index()] += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    TriangleCounts { per_node, total }
}

/// Global clustering coefficient: `3 * triangles / open-or-closed wedges`.
/// Returns 0 when the graph has no wedge.
pub fn clustering_coefficient(g: &CsrGraph) -> f64 {
    let tri = count_triangles(g).total;
    let wedges: usize = (0..g.num_nodes() as u32)
        .map(|u| {
            let d = g.degree(NodeId(u));
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn triangle_graph_has_one() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let t = count_triangles(&g);
        assert_eq!(t.total, 1);
        assert_eq!(t.per_node, vec![1, 1, 1]);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_none() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(count_triangles(&g).total, 0);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let t = count_triangles(&g);
        assert_eq!(t.total, 4);
        assert!(t.per_node.iter().all(|&c| c == 3));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // 0-1-2 triangle and 1-2-3 triangle share edge (1,2).
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let t = count_triangles(&g);
        assert_eq!(t.total, 2);
        assert_eq!(t.per_node[1], 2);
        assert_eq!(t.per_node[2], 2);
        assert_eq!(t.per_node[0], 1);
        assert_eq!(t.per_node[3], 1);
    }
}
