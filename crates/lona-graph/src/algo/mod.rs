//! Structural analytics used to characterize datasets in the
//! experiment reports (EXPERIMENTS.md): connected components, degree
//! statistics, clustering, and sampled distance estimates.

mod components;
mod degree;
mod distance;
mod kcore;
mod pagerank;
mod triangles;

pub use components::{connected_components, ComponentInfo};
pub use degree::{degree_histogram, DegreeStats};
pub use distance::{estimate_distances, DistanceEstimate};
pub use kcore::{core_decomposition, CoreDecomposition};
pub use pagerank::{pagerank, PageRankConfig};
pub use triangles::{clustering_coefficient, count_triangles, TriangleCounts};
