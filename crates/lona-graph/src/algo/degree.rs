//! Degree statistics and log-binned histograms.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Summary statistics of the degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Standard deviation of the degree distribution.
    pub std_dev: f64,
    /// 99th-percentile degree — heavy-tail indicator for the scale-free
    /// profiles (citation, intrusion).
    pub p99: usize,
}

impl DegreeStats {
    /// Compute from a graph.
    pub fn of(g: &CsrGraph) -> DegreeStats {
        let n = g.num_nodes();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                std_dev: 0.0,
                p99: 0,
            };
        }
        let mut degs: Vec<usize> = (0..n).map(|i| g.degree(NodeId(i as u32))).collect();
        degs.sort_unstable();
        let sum: usize = degs.iter().sum();
        let mean = sum as f64 / n as f64;
        let var = degs.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        DegreeStats {
            min: degs[0],
            max: degs[n - 1],
            mean,
            median: degs[n / 2],
            std_dev: var.sqrt(),
            p99: degs[((n - 1) as f64 * 0.99) as usize],
        }
    }
}

/// Log2-binned degree histogram: `bins[i]` counts nodes with degree in
/// `[2^i, 2^(i+1))`; bin 0 counts degree 0 *and* 1 nodes together is
/// avoided by giving degree 0 its own leading bucket via the returned
/// `zero_count`.
pub fn degree_histogram(g: &CsrGraph) -> (usize, Vec<usize>) {
    let mut zero = 0usize;
    let mut bins: Vec<usize> = Vec::new();
    for i in 0..g.num_nodes() {
        let d = g.degree(NodeId(i as u32));
        if d == 0 {
            zero += 1;
            continue;
        }
        let bin = usize::BITS as usize - 1 - d.leading_zeros() as usize;
        if bin >= bins.len() {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    (zero, bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_on_star() {
        // Star: center 0 with 4 leaves.
        let g = GraphBuilder::undirected()
            .extend_edges((1..=4).map(|i| (0, i)))
            .build()
            .unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_bins_powers_of_two() {
        // degrees: node0 -> 4 (bin 2), leaves -> 1 (bin 0), node5 isolated
        let g = GraphBuilder::undirected()
            .with_num_nodes(6)
            .extend_edges((1..=4).map(|i| (0, i)))
            .build()
            .unwrap();
        let (zero, bins) = degree_histogram(&g);
        assert_eq!(zero, 1);
        assert_eq!(bins[0], 4); // degree 1
        assert_eq!(bins[2], 1); // degree 4
    }

    #[test]
    fn histogram_total_matches_node_count() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
            .build()
            .unwrap();
        let (zero, bins) = degree_histogram(&g);
        assert_eq!(zero + bins.iter().sum::<usize>(), g.num_nodes());
    }
}
