//! Sampled shortest-path distance estimates.

use crate::csr::CsrGraph;
use crate::node::NodeId;
use crate::traversal::bfs_distances;

/// Distance estimates obtained from a sample of BFS sources.
#[derive(Clone, Debug)]
pub struct DistanceEstimate {
    /// Mean finite pairwise distance over the sample.
    pub mean_distance: f64,
    /// Maximum observed finite distance (a lower bound on the diameter).
    pub max_distance: u32,
    /// 90th-percentile distance ("effective diameter").
    pub effective_diameter: u32,
    /// Number of BFS sources actually used.
    pub sources: usize,
}

/// Run exact BFS from `sources.min(n)` deterministic sources (evenly
/// strided node ids, so results are reproducible without an RNG) and
/// summarize pairwise hop distances.
///
/// This is the standard "sampled BFS" estimator — exact all-pairs is
/// O(n·m) and pointless at millions of nodes.
pub fn estimate_distances(g: &CsrGraph, sources: usize) -> DistanceEstimate {
    let n = g.num_nodes();
    if n == 0 || sources == 0 {
        return DistanceEstimate {
            mean_distance: 0.0,
            max_distance: 0,
            effective_diameter: 0,
            sources: 0,
        };
    }
    let take = sources.min(n);
    let stride = (n / take).max(1);

    let mut all: Vec<u32> = Vec::new();
    let mut used = 0usize;
    for s in (0..n).step_by(stride).take(take) {
        used += 1;
        let d = bfs_distances(g, NodeId(s as u32));
        all.extend(d.into_iter().filter(|&x| x != 0 && x != u32::MAX));
    }
    if all.is_empty() {
        return DistanceEstimate {
            mean_distance: 0.0,
            max_distance: 0,
            effective_diameter: 0,
            sources: used,
        };
    }
    all.sort_unstable();
    let sum: u64 = all.iter().map(|&d| d as u64).sum();
    DistanceEstimate {
        mean_distance: sum as f64 / all.len() as f64,
        max_distance: *all.last().unwrap(),
        effective_diameter: all[((all.len() - 1) as f64 * 0.9) as usize],
        sources: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_distances() {
        let g = GraphBuilder::undirected()
            .extend_edges((0..9).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let est = estimate_distances(&g, 10);
        assert_eq!(est.sources, 10);
        assert_eq!(est.max_distance, 9);
        assert!(est.mean_distance > 1.0 && est.mean_distance < 9.0);
    }

    #[test]
    fn clique_distance_is_one() {
        let mut b = GraphBuilder::undirected();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.push_edge(i, j);
            }
        }
        let est = estimate_distances(&b.build().unwrap(), 5);
        assert_eq!(est.max_distance, 1);
        assert_eq!(est.effective_diameter, 1);
        assert!((est.mean_distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_ignored() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(4)
            .extend_edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        let est = estimate_distances(&g, 4);
        assert_eq!(est.max_distance, 1);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let est = estimate_distances(&g, 8);
        assert_eq!(est.sources, 0);
    }
}
