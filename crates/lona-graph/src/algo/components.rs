//! Connected components (undirected semantics).

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Result of a connected-components pass.
#[derive(Clone, Debug)]
pub struct ComponentInfo {
    /// Component label per node, in `0..num_components`, assigned in
    /// discovery order.
    pub labels: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

impl ComponentInfo {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Label of the component containing `u`.
    pub fn label(&self, u: NodeId) -> u32 {
        self.labels[u.index()]
    }
}

/// Label connected components with an iterative BFS over a shared
/// visited array (no recursion; linear time and memory).
///
/// Directed graphs are treated as undirected only if they were built
/// symmetrized; otherwise this computes *out-reachability* components,
/// which is what the LONA intrusion profile (weakly-connected attack
/// clusters symmetrized at build time) needs.
pub fn connected_components(g: &CsrGraph) -> ComponentInfo {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let label = sizes.len() as u32;
        let mut size = 0usize;
        labels[start as usize] = label;
        stack.push(start);
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(NodeId(u)) {
                let l = &mut labels[v.index()];
                if *l == u32::MAX {
                    *l = label;
                    stack.push(v.0);
                }
            }
        }
        sizes.push(size);
    }
    ComponentInfo { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn single_component() {
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components(), 1);
        assert_eq!(cc.largest(), 4);
    }

    #[test]
    fn two_components_and_isolate() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(6)
            .extend_edges([(0, 1), (2, 3), (3, 4)])
            .build()
            .unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components(), 3);
        let mut sizes = cc.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(cc.label(NodeId(2)), cc.label(NodeId(4)));
        assert_ne!(cc.label(NodeId(0)), cc.label(NodeId(2)));
    }

    #[test]
    fn labels_cover_all_nodes() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(5)
            .add_edge(1, 3)
            .build()
            .unwrap();
        let cc = connected_components(&g);
        assert!(cc.labels.iter().all(|&l| l != u32::MAX));
        assert_eq!(cc.sizes.iter().sum::<usize>(), 5);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components(), 0);
        assert_eq!(cc.largest(), 0);
    }
}
