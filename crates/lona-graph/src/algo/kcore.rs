//! k-core decomposition.
//!
//! The coreness distribution separates the paper's three dataset
//! classes sharply: collaboration networks have deep cores (dense
//! co-author groups), intrusion graphs are shallow (core 1–2
//! periphery with a small dense center). EXPERIMENTS.md uses this to
//! validate the generated stand-ins.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Result of a core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// Coreness of each node (the largest k such that the node
    /// belongs to the k-core).
    pub coreness: Vec<u32>,
    /// The degeneracy: the maximum coreness in the graph.
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// All nodes with coreness ≥ k.
    pub fn core_members(&self, k: u32) -> Vec<NodeId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Batagelj–Zaveršnik linear-time core decomposition (bucket-sorted
/// peeling).
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_nodes();
    if n == 0 {
        return CoreDecomposition {
            coreness: Vec::new(),
            degeneracy: 0,
        };
    }

    let mut degree: Vec<u32> = (0..n).map(|i| g.degree(NodeId(i as u32)) as u32).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bin_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_start[d as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // node -> position in `vert`
    let mut vert = vec![0u32; n]; // sorted nodes
    {
        let mut cursor = bin_start.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }

    // Peel in degree order, demoting neighbors bucket-by-bucket.
    let mut coreness = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        coreness[v] = degree[v];
        for &u in g.neighbors(NodeId(v as u32)) {
            let u = u.index();
            if degree[u] > degree[v] {
                // Swap u with the first node of its degree bucket,
                // then shrink the bucket boundary.
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bin_start[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin_start[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        coreness,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_is_one_core() {
        let g = GraphBuilder::undirected()
            .extend_edges((0..5).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_coreness_is_size_minus_one() {
        let mut b = GraphBuilder::undirected();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.push_edge(i, j);
            }
        }
        let d = core_decomposition(&b.build().unwrap());
        assert_eq!(d.degeneracy, 4);
        assert!(d.coreness.iter().all(|&c| c == 4));
    }

    #[test]
    fn clique_with_tail() {
        // Triangle {0,1,2} plus tail 2-3-4.
        let g = GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
            .build()
            .unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.coreness[0], 2);
        assert_eq!(d.coreness[1], 2);
        assert_eq!(d.coreness[2], 2);
        assert_eq!(d.coreness[3], 1);
        assert_eq!(d.coreness[4], 1);
        assert_eq!(d.core_members(2).len(), 3);
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.coreness[2], 0);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn coreness_bounded_by_degree() {
        let mut b = GraphBuilder::undirected();
        for i in 0..50u32 {
            b.push_edge(i, (i + 1) % 50);
            b.push_edge(i, (i * 3 + 1) % 50);
        }
        let g = b.build().unwrap();
        let d = core_decomposition(&g);
        for u in g.nodes() {
            assert!(d.coreness[u.index()] as usize <= g.degree(u));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(0)
            .build()
            .unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.coreness.is_empty());
    }
}
