//! Epoch-stamped visited set.

/// A visited set over dense node ids with O(1) clear.
///
/// A plain `Vec<bool>` must be re-zeroed between traversals, which is
/// O(n) per query — fatal when a top-k query performs one BFS *per
/// node*. `EpochSet` stamps entries with a generation counter instead:
/// bumping the epoch invalidates the whole set in O(1). The stamp array
/// is only rebuilt on the (rare) u32 wrap.
#[derive(Clone, Debug)]
pub struct EpochSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochSet {
    /// Create a set covering ids `0..n`.
    pub fn new(n: usize) -> Self {
        EpochSet {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of ids covered.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Invalidate all membership in O(1).
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Insert `id`; returns `true` if it was not already present.
    #[inline(always)]
    pub fn insert(&mut self, id: u32) -> bool {
        let s = &mut self.stamp[id as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Whether `id` is present.
    #[inline(always)]
    pub fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }

    /// Remove `id` if present; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        let s = &mut self.stamp[id as usize];
        if *s == self.epoch {
            *s = self.epoch - 1; // any value != epoch works; epoch >= 1
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = EpochSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut s = EpochSet::new(4);
        for i in 0..4 {
            s.insert(i);
        }
        s.clear();
        for i in 0..4 {
            assert!(!s.contains(i));
            assert!(s.insert(i));
        }
    }

    #[test]
    fn remove_works_within_epoch() {
        let mut s = EpochSet::new(4);
        s.insert(1);
        assert!(s.remove(1));
        assert!(!s.contains(1));
        assert!(!s.remove(1));
        assert!(s.insert(1));
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = EpochSet::new(2);
        s.epoch = u32::MAX; // force imminent wrap
        s.insert(0);
        assert!(s.contains(0));
        s.clear(); // wraps: stamps zeroed, epoch back to 1
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.contains(0));
    }

    #[test]
    fn many_clears_stay_correct() {
        let mut s = EpochSet::new(3);
        for round in 0..1000u32 {
            let id = round % 3;
            assert!(s.insert(id));
            assert!(s.contains(id));
            s.clear();
        }
    }
}
