//! Breadth-first search.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::node::NodeId;

use super::visited::EpochSet;

/// A breadth-first traversal yielding `(node, distance)` pairs starting
/// from (and including) the source at distance 0.
///
/// For repeated traversals prefer [`super::KhopCollector`], which
/// reuses its buffers; `Bfs` allocates per instance and is intended for
/// one-off full traversals (components, distance sampling).
pub struct Bfs<'a> {
    g: &'a CsrGraph,
    queue: VecDeque<(NodeId, u32)>,
    visited: EpochSet,
}

impl<'a> Bfs<'a> {
    /// Start a BFS from `source`.
    pub fn new(g: &'a CsrGraph, source: NodeId) -> Self {
        let mut visited = EpochSet::new(g.num_nodes());
        visited.insert(source.0);
        let mut queue = VecDeque::new();
        queue.push_back((source, 0));
        Bfs { g, queue, visited }
    }
}

impl Iterator for Bfs<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<Self::Item> {
        let (u, d) = self.queue.pop_front()?;
        for &v in self.g.neighbors(u) {
            if self.visited.insert(v.0) {
                self.queue.push_back((v, d + 1));
            }
        }
        Some((u, d))
    }
}

/// Exact single-source shortest-path distances (in hops) to every node;
/// unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    for (v, d) in Bfs::new(g, source) {
        dist[v.index()] = d;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: u32) -> CsrGraph {
        GraphBuilder::undirected()
            .extend_edges((0..n - 1).map(|i| (i, i + 1)))
            .build()
            .unwrap()
    }

    #[test]
    fn bfs_yields_source_first_at_distance_zero() {
        let g = path_graph(4);
        let first = Bfs::new(&g, NodeId(2)).next().unwrap();
        assert_eq!(first, (NodeId(2), 0));
    }

    #[test]
    fn distances_on_a_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, NodeId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked_max() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(4)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn bfs_visits_each_node_once() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build()
            .unwrap();
        let mut seen: Vec<_> = Bfs::new(&g, NodeId(0)).map(|(v, _)| v.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn distances_are_nondecreasing_in_bfs_order() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .build()
            .unwrap();
        let ds: Vec<u32> = Bfs::new(&g, NodeId(0)).map(|(_, d)| d).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
    }
}
