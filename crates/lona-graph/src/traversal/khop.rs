//! Reusable bounded-depth neighborhood expansion.

use crate::csr::CsrGraph;
use crate::node::NodeId;

use super::visited::EpochSet;

/// A reusable h-hop neighborhood collector.
///
/// Every LONA algorithm spends almost all of its time enumerating
/// `S_h(u)` — the set of distinct nodes within `h` hops of `u`,
/// excluding `u` itself. Allocating a queue and a visited set per
/// expansion would dominate the runtime, so this collector owns two
/// frontier buffers and an [`EpochSet`] and reuses them across calls;
/// a full expansion performs zero heap allocations once the buffers
/// have grown to the working-set size.
///
/// ```
/// use lona_graph::{GraphBuilder, NodeId};
/// use lona_graph::traversal::KhopCollector;
///
/// // path 0-1-2-3
/// let g = GraphBuilder::undirected()
///     .extend_edges([(0, 1), (1, 2), (2, 3)])
///     .build().unwrap();
/// let mut c = KhopCollector::new(g.num_nodes());
/// let mut seen = vec![];
/// c.for_each(&g, NodeId(0), 2, |v| seen.push(v.0));
/// seen.sort();
/// assert_eq!(seen, vec![1, 2]); // S_2(0), excluding node 0 itself
/// ```
#[derive(Clone, Debug)]
pub struct KhopCollector {
    visited: EpochSet,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl KhopCollector {
    /// Create a collector for graphs with up to `n` nodes.
    pub fn new(n: usize) -> Self {
        KhopCollector {
            visited: EpochSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Visit every node of `S_h(u)` exactly once (excluding `u`),
    /// calling `f(v)` per node. Returns `|S_h(u)|`.
    #[inline]
    pub fn for_each<F: FnMut(NodeId)>(
        &mut self,
        g: &CsrGraph,
        u: NodeId,
        h: u32,
        mut f: F,
    ) -> usize {
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);
        let mut count = 0usize;

        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                for &v in g.neighbors(NodeId(x)) {
                    if self.visited.insert(v.0) {
                        count += 1;
                        f(v);
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        count
    }

    /// Like [`KhopCollector::for_each`] but also reports each node's
    /// hop distance (1-based) from `u`.
    #[inline]
    pub fn for_each_with_depth<F: FnMut(NodeId, u32)>(
        &mut self,
        g: &CsrGraph,
        u: NodeId,
        h: u32,
        mut f: F,
    ) -> usize {
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);
        let mut count = 0usize;

        for depth in 1..=h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                for &v in g.neighbors(NodeId(x)) {
                    if self.visited.insert(v.0) {
                        count += 1;
                        f(v, depth);
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        count
    }

    /// `|S_h(u)|` without visiting (same traversal, no callback).
    #[inline]
    pub fn count(&mut self, g: &CsrGraph, u: NodeId, h: u32) -> usize {
        self.for_each(g, u, h, |_| {})
    }

    /// Collect `S_h(u)` into `out` (cleared first). Returns the count.
    pub fn collect_into(
        &mut self,
        g: &CsrGraph,
        u: NodeId,
        h: u32,
        out: &mut Vec<NodeId>,
    ) -> usize {
        out.clear();
        self.for_each(g, u, h, |v| out.push(v))
    }

    /// Expand `S_h(u)` while an external predicate keeps the expansion
    /// alive. `f(v)` returns `false` to abort early (used by bound-
    /// based early termination in LONA verification). Returns
    /// `Some(count)` when the expansion completed, `None` when aborted.
    pub fn try_for_each<F: FnMut(NodeId) -> bool>(
        &mut self,
        g: &CsrGraph,
        u: NodeId,
        h: u32,
        mut f: F,
    ) -> Option<usize> {
        self.visited.clear();
        self.visited.insert(u.0);
        self.frontier.clear();
        self.frontier.push(u.0);
        let mut count = 0usize;

        for _ in 0..h {
            if self.frontier.is_empty() {
                break;
            }
            self.next.clear();
            for &x in &self.frontier {
                for &v in g.neighbors(NodeId(x)) {
                    if self.visited.insert(v.0) {
                        count += 1;
                        if !f(v) {
                            return None;
                        }
                        self.next.push(v.0);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        Some(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::traversal::bfs_distances;

    fn sample() -> CsrGraph {
        // 0 - 1 - 2 - 3
        //  \  |
        //   \ 4 - 5
        GraphBuilder::undirected()
            .extend_edges([(0, 1), (1, 2), (2, 3), (0, 4), (1, 4), (4, 5)])
            .build()
            .unwrap()
    }

    #[test]
    fn one_hop_is_direct_neighbors() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        let mut s = vec![];
        let n = c.collect_into(&g, NodeId(1), 1, &mut s);
        s.sort_unstable();
        assert_eq!(n, 3);
        assert_eq!(s, vec![NodeId(0), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn two_hop_excludes_source() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        let mut s = vec![];
        c.collect_into(&g, NodeId(0), 2, &mut s);
        s.sort_unstable();
        // S_2(0) = {1,4} ∪ {2,5}; node 0 excluded.
        assert_eq!(s, vec![NodeId(1), NodeId(2), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn matches_bfs_distances_definition() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        for u in g.nodes() {
            for h in 1..=3u32 {
                let dist = bfs_distances(&g, u);
                let mut expect: Vec<u32> = (0..g.num_nodes() as u32)
                    .filter(|&v| v != u.0 && dist[v as usize] <= h)
                    .collect();
                expect.sort_unstable();
                let mut got = vec![];
                c.for_each(&g, u, h, |v| got.push(v.0));
                got.sort_unstable();
                assert_eq!(got, expect, "u={u:?} h={h}");
            }
        }
    }

    #[test]
    fn depths_match_bfs() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        let dist = bfs_distances(&g, NodeId(3));
        c.for_each_with_depth(&g, NodeId(3), 3, |v, d| {
            assert_eq!(dist[v.index()], d, "node {v:?}");
        });
    }

    #[test]
    fn zero_hops_is_empty() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        assert_eq!(c.count(&g, NodeId(0), 0), 0);
    }

    #[test]
    fn reuse_across_sources_is_clean() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        let a = c.count(&g, NodeId(0), 2);
        let b = c.count(&g, NodeId(3), 2);
        let a2 = c.count(&g, NodeId(0), 2);
        assert_eq!(a, a2);
        assert_eq!(b, 2); // S_2(3) = {2, 1}
    }

    #[test]
    fn try_for_each_aborts() {
        let g = sample();
        let mut c = KhopCollector::new(g.num_nodes());
        let mut seen = 0;
        let res = c.try_for_each(&g, NodeId(1), 2, |_| {
            seen += 1;
            seen < 2
        });
        assert!(res.is_none());
        assert_eq!(seen, 2);
        // Collector still usable afterwards.
        assert_eq!(c.count(&g, NodeId(1), 1), 3);
    }

    #[test]
    fn isolated_node_has_empty_neighborhood() {
        let g = GraphBuilder::undirected()
            .with_num_nodes(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let mut c = KhopCollector::new(g.num_nodes());
        assert_eq!(c.count(&g, NodeId(2), 5), 0);
    }
}
