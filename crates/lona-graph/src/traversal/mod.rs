//! Traversal primitives: epoch-stamped visited sets, BFS, and the
//! reusable h-hop neighborhood collector that is the inner loop of
//! every LONA algorithm.

mod bfs;
mod khop;
mod visited;

pub use bfs::{bfs_distances, Bfs};
pub use khop::KhopCollector;
pub use visited::EpochSet;
