//! # lona
//!
//! A complete Rust implementation of **LONA** — the Local Neighborhood
//! Aggregation framework from *Top-K Aggregation Queries over Large
//! Networks* (Xifeng Yan, Bin He, Feida Zhu, Jiawei Han; ICDE 2010) —
//! together with every substrate the paper depends on.
//!
//! The problem: given a network whose nodes carry relevance scores
//! `f : V -> [0, 1]`, find the `k` nodes whose h-hop neighborhoods
//! have the highest aggregate score (SUM or AVG). LONA answers these
//! queries up to an order of magnitude faster than the naive scan by
//! pruning with a pre-computed *differential index* (forward) or a
//! *partial score distribution* (backward).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graph storage, traversal, analytics, I/O;
//! * [`gen`] — synthetic network generators and the three
//!   paper-dataset profiles;
//! * [`relevance`] — relevance-function framework (binary blacking,
//!   exponential mixture, random-walk smoothing);
//! * [`core`] — the LONA engine: aggregates, indexes, bounds, and the
//!   Base / LONA-Forward / BackwardNaive / LONA-Backward algorithms;
//! * [`relational`] — the RDBMS-style self-join baseline the paper
//!   motivates against.
//!
//! ## Quickstart
//!
//! ```
//! use lona::prelude::*;
//!
//! // A collaboration-network stand-in and a 1%-blacked relevance mix.
//! let profile = DatasetProfile::smoke(DatasetKind::Collaboration, 42);
//! let g = profile.generate().unwrap();
//! let scores = MixtureBuilder::new(0.01).build(&g, 42);
//!
//! // Who has the most relevant 2-hop neighborhood?
//! let mut engine = LonaEngine::new(&g, 2);
//! let query = TopKQuery::new(10, Aggregate::Sum);
//! let top = engine.run(&Algorithm::backward(), &query, &scores);
//! assert_eq!(top.entries.len(), 10);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.

#![warn(missing_docs)]

pub use lona_core as core;
pub use lona_gen as gen;
pub use lona_graph as graph;
pub use lona_relational as relational;
pub use lona_relevance as relevance;

/// The stable serve surface: client, server builder, wire types, and
/// stats — everything an application embedding (or talking to) a
/// `lona serve` instance needs, re-exported under one path so
/// downstream code is insulated from internal module moves.
pub mod serve {
    pub use lona_core::serve::{binary_scores, serve_algorithm, validate_request};
    pub use lona_core::serve::{
        AdmissionQueue, Admit, ClientBuilder, CodecError, ErrorCode, Inbound, LatencyHistogram,
        Reply, Request, Response, ScoreRef, ServeClient, ServeMetrics, ServeOptions, ServeStats,
        Server, ServerBuilder, StatsReport, UpdateReport,
    };
}

/// One-stop imports for applications.
pub mod prelude {
    pub use lona_core::{
        Aggregate, Algorithm, BackwardOptions, BatchMode, BatchOptions, BatchQuery, BatchResult,
        CompiledGraph, CoordinatorStats, EngineState, ForwardOptions, GammaSpec, LonaEngine, Plan,
        PlanReason, PlannerConfig, ProcessingOrder, QueryResult, QueryStats, ReorderedEngine,
        ServeClient, ServeOptions, Server, ServerBuilder, ShardOptions, ShardedEngine,
        ShardedResult, TopKQuery,
    };
    pub use lona_gen::{DatasetKind, DatasetProfile};
    pub use lona_graph::{
        partition, CsrGraph, GraphBuilder, GraphDelta, NodeId, NodeOrder, OverlayGraph,
        PartitionStrategy, Permutation,
    };
    pub use lona_relevance::{binary_blacking, MixtureBuilder, Relevance, ScoreVec};
}
